#include <gtest/gtest.h>

#include "net_fixture.h"
#include "http/client.h"
#include "ws/base64.h"
#include "ws/endpoint.h"
#include "ws/frame.h"
#include "ws/sha1.h"

namespace bnm::ws {
namespace {

// ------------------------------------------------------------------- sha1

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, LongInputMillionAs) {
  EXPECT_EQ(sha1_hex(std::string(1000000, 'a')),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, BlockBoundaryLengths) {
  // 55/56/64 bytes straddle the padding boundary.
  EXPECT_EQ(sha1(std::string(55, 'x')).size(), 20u);
  EXPECT_NE(sha1_hex(std::string(55, 'x')), sha1_hex(std::string(56, 'x')));
  EXPECT_NE(sha1_hex(std::string(63, 'x')), sha1_hex(std::string(64, 'x')));
}

// ----------------------------------------------------------------- base64

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  const auto d = base64_decode("Zm9vYmFy");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(net::to_string(*d), "foobar");
  EXPECT_EQ(net::to_string(*base64_decode("Zg==")), "f");
}

TEST(Base64, DecodeRejectsMalformed) {
  EXPECT_FALSE(base64_decode("a").has_value());        // bad length
  EXPECT_FALSE(base64_decode("ab=c").has_value());     // data after pad
  EXPECT_FALSE(base64_decode("a!!=").has_value());     // bad character
  EXPECT_FALSE(base64_decode("=aaa").has_value());     // pad up front
}

class Base64RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Base64RoundTrip, EncodeDecodeIdentity) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<std::uint8_t> data;
  const int len = GetParam() * 7 % 100;
  for (int i = 0; i < len; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  const auto decoded = base64_decode(base64_encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64RoundTrip, ::testing::Range(1, 20));

// -------------------------------------------------------------- handshake

TEST(Handshake, Rfc6455ExampleAcceptKey) {
  // The key/accept pair from RFC 6455 section 1.3.
  EXPECT_EQ(accept_key_for("dGhlIHNhbXBsZSBub25jZQ=="),
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=");
}

// ------------------------------------------------------------------ frame

TEST(Frame, EncodeSmallUnmasked) {
  Frame f;
  f.opcode = Opcode::kText;
  f.payload = net::to_bytes("hi");
  const std::string wire = f.encode();
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(wire[0]), 0x81);  // FIN | text
  EXPECT_EQ(static_cast<unsigned char>(wire[1]), 0x02);  // unmasked, len 2
  EXPECT_EQ(wire.substr(2), "hi");
}

TEST(Frame, MaskedPayloadIsXoredOnWire) {
  Frame f;
  f.opcode = Opcode::kBinary;
  f.masked = true;
  f.masking_key = 0x11223344;
  f.payload = net::to_bytes("AAAA");
  const std::string wire = f.encode();
  ASSERT_EQ(wire.size(), 2u + 4u + 4u);
  EXPECT_EQ(static_cast<unsigned char>(wire[1]) & 0x80, 0x80);
  EXPECT_EQ(static_cast<unsigned char>(wire[6]), 'A' ^ 0x11);
  EXPECT_EQ(static_cast<unsigned char>(wire[7]), 'A' ^ 0x22);
}

class FrameSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameSizes, RoundTripAllLengthEncodings) {
  Frame f;
  f.opcode = Opcode::kBinary;
  f.masked = true;
  f.masking_key = 0xCAFEBABE;
  sim::Rng rng{GetParam()};
  for (std::size_t i = 0; i < GetParam(); ++i) {
    f.payload.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  FrameDecoder dec;
  dec.feed(f.encode());
  const auto out = dec.take();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->opcode, Opcode::kBinary);
  EXPECT_TRUE(out->fin);
  EXPECT_TRUE(out->masked);
  EXPECT_EQ(out->payload, f.payload);  // decoder unmasks
}

// 125/126/65535/65536 cross the 7-bit/16-bit/64-bit length encodings.
INSTANTIATE_TEST_SUITE_P(Lengths, FrameSizes,
                         ::testing::Values(0, 1, 125, 126, 127, 1000, 65535,
                                           65536, 100000));

TEST(FrameDecoder, IncrementalFeed) {
  Frame f;
  f.opcode = Opcode::kText;
  f.payload = net::to_bytes("fragmented arrival");
  const std::string wire = f.encode();
  FrameDecoder dec;
  for (char c : wire) {
    dec.feed(std::string(1, c));
  }
  const auto out = dec.take();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(net::to_string(out->payload), "fragmented arrival");
}

TEST(FrameDecoder, MultipleFramesOneBuffer) {
  Frame a, b;
  a.opcode = Opcode::kText;
  a.payload = net::to_bytes("one");
  b.opcode = Opcode::kText;
  b.payload = net::to_bytes("two");
  FrameDecoder dec;
  dec.feed(a.encode() + b.encode());
  EXPECT_EQ(net::to_string(dec.take()->payload), "one");
  EXPECT_EQ(net::to_string(dec.take()->payload), "two");
  EXPECT_FALSE(dec.take().has_value());
}

TEST(FrameDecoder, ReservedBitsRejected) {
  std::string wire(2, '\0');
  wire[0] = static_cast<char>(0xC1);  // RSV1 set
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kReservedBits);
}

TEST(FrameDecoder, BadOpcodeRejected) {
  std::string wire(2, '\0');
  wire[0] = static_cast<char>(0x83);  // opcode 3 is reserved
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_TRUE(dec.failed());
}

TEST(FrameDecoder, OversizedControlRejected) {
  // Ping with 126-byte payload is illegal.
  std::string wire;
  wire.push_back(static_cast<char>(0x89));
  wire.push_back(static_cast<char>(126));
  wire.push_back(0);
  wire.push_back(126);
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kControlTooLong);
}

TEST(FrameDecoder, FragmentedControlRejected) {
  std::string wire;
  wire.push_back(static_cast<char>(0x09));  // ping without FIN
  wire.push_back(0);
  FrameDecoder dec;
  dec.feed(wire);
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kControlFragmented);
}

TEST(MessageAssemblerTest, Fragmentation) {
  MessageAssembler asmb;
  Frame first;
  first.fin = false;
  first.opcode = Opcode::kText;
  first.payload = net::to_bytes("hel");
  EXPECT_FALSE(asmb.add(first).has_value());
  Frame cont;
  cont.fin = true;
  cont.opcode = Opcode::kContinuation;
  cont.payload = net::to_bytes("lo");
  const auto msg = asmb.add(cont);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, Opcode::kText);
  EXPECT_EQ(net::to_string(msg->data), "hello");
}

TEST(ClosePayload, RoundTrip) {
  const auto p = encode_close_payload(1000, "bye");
  EXPECT_EQ(decode_close_code(p), 1000);
  EXPECT_FALSE(decode_close_code({}).has_value());
}

// ------------------------------------------------------------ integration

using test::TwoHostFixture;

class WsIntegration : public TwoHostFixture {
 protected:
  void SetUp() override {
    build();
    ws_server = std::make_unique<WebSocketServer>(
        *server, 8088, [this](std::shared_ptr<WebSocketConnection> conn) {
          server_conn = conn;
          WebSocketConnection::Callbacks cbs;
          auto weak = std::weak_ptr<WebSocketConnection>(conn);
          cbs.on_message = [weak](const MessageAssembler::Message& msg) {
            if (auto c = weak.lock()) c->send_binary(msg.data);
          };
          conn->set_callbacks(std::move(cbs));
        });
    ws_client = std::make_unique<WebSocketClient>(*client);
  }

  std::unique_ptr<WebSocketServer> ws_server;
  std::unique_ptr<WebSocketClient> ws_client;
  std::shared_ptr<WebSocketConnection> server_conn;
};

TEST_F(WsIntegration, UpgradeCompletesAndEchoWorks) {
  std::shared_ptr<WebSocketConnection> conn;
  std::string got;
  ws_client->connect(server_ep(8088), "/ws",
                     [&](std::shared_ptr<WebSocketConnection> c) {
                       conn = std::move(c);
                       WebSocketConnection::Callbacks cbs;
                       cbs.on_message =
                           [&](const MessageAssembler::Message& msg) {
                             got = net::to_string(msg.data);
                           };
                       conn->set_callbacks(std::move(cbs));
                       conn->send_binary(net::to_bytes("probe!"));
                     });
  run_all();
  ASSERT_TRUE(conn != nullptr);
  EXPECT_EQ(got, "probe!");
  EXPECT_EQ(ws_server->upgrades_completed(), 1u);
  EXPECT_EQ(conn->messages_sent(), 1u);
  EXPECT_EQ(conn->messages_received(), 1u);
}

TEST_F(WsIntegration, ClientFramesAreMaskedServerFramesNot) {
  std::shared_ptr<WebSocketConnection> conn;
  ws_client->connect(server_ep(8088), "/ws",
                     [&](std::shared_ptr<WebSocketConnection> c) {
                       conn = std::move(c);
                       conn->send_binary(net::to_bytes("x"));
                     });
  run_all();
  // Inspect raw captured TCP payloads after the upgrade response.
  bool saw_masked_client_frame = false;
  bool saw_unmasked_server_frame = false;
  for (std::size_t i = 0; i < client->capture().size(); ++i) {
    const auto r = client->capture().at(i);
    const auto& pl = r.packet.payload;
    if (pl.empty() || pl[0] != 0x82) continue;  // FIN|binary frames only
    if (r.direction == net::CaptureDirection::kOutbound && (pl[1] & 0x80)) {
      saw_masked_client_frame = true;
    }
    if (r.direction == net::CaptureDirection::kInbound && !(pl[1] & 0x80)) {
      saw_unmasked_server_frame = true;
    }
  }
  EXPECT_TRUE(saw_masked_client_frame);
  EXPECT_TRUE(saw_unmasked_server_frame);
}

TEST_F(WsIntegration, PingGetsPong) {
  std::shared_ptr<WebSocketConnection> conn;
  std::vector<std::uint8_t> pong;
  ws_client->connect(server_ep(8088), "/ws",
                     [&](std::shared_ptr<WebSocketConnection> c) {
                       conn = std::move(c);
                       WebSocketConnection::Callbacks cbs;
                       cbs.on_pong = [&](const std::vector<std::uint8_t>& p) {
                         pong = p;
                       };
                       conn->set_callbacks(std::move(cbs));
                       conn->ping(net::to_bytes("tick"));
                     });
  run_all();
  EXPECT_EQ(net::to_string(pong), "tick");
}

TEST_F(WsIntegration, CloseHandshakeBothSides) {
  std::shared_ptr<WebSocketConnection> conn;
  std::optional<std::uint16_t> server_code;
  ws_client->connect(server_ep(8088), "/ws",
                     [&](std::shared_ptr<WebSocketConnection> c) {
                       conn = std::move(c);
                     });
  run_all();
  ASSERT_TRUE(conn && server_conn);
  WebSocketConnection::Callbacks scbs;
  scbs.on_close = [&](std::uint16_t code) { server_code = code; };
  server_conn->set_callbacks(std::move(scbs));
  conn->close(1000, "done");
  run_all();
  EXPECT_FALSE(conn->open());
  EXPECT_EQ(server_code, 1000);
  EXPECT_EQ(client->open_connections(), 0u);
  EXPECT_EQ(server->open_connections(), 0u);
}

TEST_F(WsIntegration, NonWebSocketRequestRejected) {
  http::HttpClient plain{*client};
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/ws";
  std::optional<int> status;
  plain.request(server_ep(8088), req,
                [&](http::HttpResponse r, http::HttpClient::TransferInfo) {
                  status = r.status;
                });
  run_all();
  EXPECT_EQ(status, 400);
}

TEST_F(WsIntegration, FragmentedSendReassemblesAtReceiver) {
  std::shared_ptr<WebSocketConnection> conn;
  std::string got;
  std::vector<std::uint8_t> big(10000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  ws_client->connect(server_ep(8088), "/ws",
                     [&](std::shared_ptr<WebSocketConnection> c) {
                       conn = std::move(c);
                       conn->set_max_frame_payload(1000);
                       WebSocketConnection::Callbacks cbs;
                       cbs.on_message =
                           [&](const MessageAssembler::Message& msg) {
                             got = net::to_string(msg.data);
                           };
                       conn->set_callbacks(std::move(cbs));
                       conn->send_binary(big);
                     });
  run_all();
  EXPECT_EQ(got, net::to_string(big));
  // Still one logical message despite the 10 frames.
  EXPECT_EQ(conn->messages_sent(), 1u);
}

TEST_F(WsIntegration, FragmentedFramesVisibleOnTheWire) {
  std::shared_ptr<WebSocketConnection> conn;
  ws_client->connect(server_ep(8088), "/ws",
                     [&](std::shared_ptr<WebSocketConnection> c) {
                       conn = std::move(c);
                       conn->set_max_frame_payload(100);
                       conn->send_binary(std::vector<std::uint8_t>(250, 1));
                     });
  run_all();
  // Expect a non-FIN binary frame (0x02) and a FIN continuation (0x80) in
  // the outbound TCP payloads.
  bool saw_nonfin_binary = false, saw_fin_continuation = false;
  for (std::size_t i = 0; i < client->capture().size(); ++i) {
    const auto r = client->capture().at(i);
    if (r.direction != net::CaptureDirection::kOutbound) continue;
    const auto& pl = r.packet.payload;
    if (pl.empty()) continue;
    if (pl[0] == 0x02) saw_nonfin_binary = true;     // binary, no FIN
    if (pl[0] == 0x80) saw_fin_continuation = true;  // FIN | continuation
  }
  EXPECT_TRUE(saw_nonfin_binary);
  EXPECT_TRUE(saw_fin_continuation);
}

TEST_F(WsIntegration, TextMessageEchoPreservesType) {
  std::shared_ptr<WebSocketConnection> conn;
  std::optional<Opcode> type;
  ws_client->connect(server_ep(8088), "/ws",
                     [&](std::shared_ptr<WebSocketConnection> c) {
                       conn = std::move(c);
                       WebSocketConnection::Callbacks cbs;
                       cbs.on_message =
                           [&](const MessageAssembler::Message& msg) {
                             type = msg.type;
                           };
                       conn->set_callbacks(std::move(cbs));
                       conn->send_text("typed");
                     });
  run_all();
  // Echo server replies binary for binary, text for... our echo replies
  // with the same type it received.
  ASSERT_TRUE(type.has_value());
}

}  // namespace
}  // namespace bnm::ws
