#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "sim/random.h"

namespace bnm::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root{7};
  Rng f1 = root.fork("alpha");
  Rng f2 = Rng{7}.fork("alpha");
  Rng f3 = root.fork("beta");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
  // Forks with different labels produce different streams.
  Rng g1 = Rng{7}.fork("alpha");
  EXPECT_NE(g1.next_u64(), f3.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a{9}, b{9};
  (void)a.fork("x");
  (void)a.fork("y");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng{4};
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng{6};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng{8};
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{9};
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{10};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng{11};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, DurationHelpersMatchUnits) {
  Rng rng{12};
  for (int i = 0; i < 100; ++i) {
    const auto d = rng.uniform_ms(2.0, 5.0);
    EXPECT_GE(d, sim::Duration::millis(2));
    EXPECT_LT(d, sim::Duration::millis(5));
  }
}

// Property: lognormal_med's median equals the requested median for any
// (median, sigma) combination.
class LognormalSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LognormalSweep, MedianIsParameter) {
  const auto [median, sigma] = GetParam();
  Rng rng{static_cast<std::uint64_t>(median * 1000 + sigma * 100)};
  std::vector<double> xs;
  const int n = 40001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal_med(median, sigma));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], median, median * 0.05);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Medians, LognormalSweep,
    ::testing::Combine(::testing::Values(0.5, 5.0, 20.0, 80.0),
                       ::testing::Values(0.15, 0.45, 0.8)));

}  // namespace
}  // namespace bnm::sim
