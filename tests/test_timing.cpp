#include <gtest/gtest.h>

#include <set>

#include "browser/clock_set.h"
#include "browser/timing.h"

namespace bnm::browser {
namespace {

sim::TimePoint at_ms(double ms) {
  return sim::TimePoint::epoch() + sim::Duration::from_millis_f(ms);
}

TEST(PerfectClockTest, ReturnsExactTime) {
  PerfectClock clock;
  const auto t = at_ms(123.456789);
  EXPECT_EQ(clock.read(t), t);
  EXPECT_EQ(clock.resolution(), sim::Duration::nanos(1));
}

TEST(NanoClockTest, ExactWithConfigurableCallCost) {
  NanoClock clock{sim::Duration::nanos(500)};
  EXPECT_EQ(clock.read(at_ms(5)), at_ms(5));
  EXPECT_EQ(clock.call_cost(), sim::Duration::nanos(500));
  EXPECT_EQ(clock.name(), "System.nanoTime");
}

QuantizedClock::Config fixed_1ms() {
  QuantizedClock::Config cfg;
  cfg.granularities = {sim::Duration::millis(1)};
  return cfg;
}

QuantizedClock::Config windows_like() {
  QuantizedClock::Config cfg;
  cfg.granularities = {sim::Duration::millis(1),
                       sim::Duration::from_millis_f(15.625)};
  cfg.epoch_min = sim::Duration::seconds(30);
  cfg.epoch_max = sim::Duration::seconds(60);
  return cfg;
}

TEST(QuantizedClockTest, NeverReadsAheadAndWithinOneGranule) {
  QuantizedClock clock{fixed_1ms(), sim::Rng{11}};
  for (double ms = 0.0; ms < 100.0; ms += 0.37) {
    const auto t = at_ms(ms);
    const auto r = clock.read(t);
    EXPECT_LE(r, t);
    EXPECT_LT(t - r, sim::Duration::millis(1));
  }
}

TEST(QuantizedClockTest, ValuesAreMultiplesOfGranuleModuloPhase) {
  QuantizedClock clock{fixed_1ms(), sim::Rng{12}};
  std::set<std::int64_t> residues;
  for (double ms = 0.0; ms < 50.0; ms += 0.21) {
    const std::int64_t r = clock.read(at_ms(ms)).ns_since_epoch() % 1'000'000;
    residues.insert(r < 0 ? r + 1'000'000 : r);  // mathematical modulus
  }
  // All reads share one residue: the phase offset.
  EXPECT_EQ(residues.size(), 1u);
}

TEST(QuantizedClockTest, MonotoneNonDecreasing) {
  QuantizedClock clock{windows_like(), sim::Rng{13}};
  sim::TimePoint prev = clock.read(at_ms(0));
  for (double ms = 0.5; ms < 200000.0; ms += 333.3) {
    const auto r = clock.read(at_ms(ms));
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(QuantizedClockTest, NominalResolutionIsAlways1ms) {
  QuantizedClock clock{windows_like(), sim::Rng{14}};
  EXPECT_EQ(clock.resolution(), sim::Duration::millis(1));
  EXPECT_EQ(clock.name(), "Date.getTime");
}

TEST(QuantizedClockTest, RegimeSwitchesBetweenConfiguredGranularities) {
  QuantizedClock clock{windows_like(), sim::Rng{15}};
  std::set<std::int64_t> seen;
  for (double s = 0; s < 1200; s += 5) {
    seen.insert(clock.granularity_at(at_ms(s * 1000)).ns());
  }
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count(1'000'000));
  EXPECT_TRUE(seen.count(15'625'000));
}

TEST(QuantizedClockTest, RegimesPersistForEpochDuration) {
  QuantizedClock clock{windows_like(), sim::Rng{16}};
  // Sample every second; count switches over 20 minutes. Epochs are 30-60 s,
  // so expect roughly 20*60/45 ~ 27 switches; definitely fewer than 60.
  int switches = 0;
  auto prev = clock.granularity_at(at_ms(0));
  for (double s = 1; s < 1200; s += 1) {
    const auto g = clock.granularity_at(at_ms(s * 1000));
    if (g != prev) ++switches;
    prev = g;
  }
  EXPECT_GT(switches, 10);
  EXPECT_LT(switches, 60);
}

TEST(QuantizedClockTest, SingleGranularityNeverSwitches) {
  QuantizedClock clock{fixed_1ms(), sim::Rng{17}};
  for (double s = 0; s < 3600; s += 10) {
    EXPECT_EQ(clock.granularity_at(at_ms(s * 1000)), sim::Duration::millis(1));
  }
}

TEST(QuantizedClockTest, IntervalErrorBoundedByGranule) {
  // Measuring a 50.3 ms interval with a 15.625 ms clock gives one of the
  // two adjacent multiples - the mechanism behind Fig. 4's two levels.
  QuantizedClock::Config cfg;
  cfg.granularities = {sim::Duration::from_millis_f(15.625)};
  QuantizedClock clock{cfg, sim::Rng{18}};
  std::set<std::int64_t> diffs;
  for (double start = 0; start < 200.0; start += 0.731) {
    const auto a = clock.read(at_ms(start));
    const auto b = clock.read(at_ms(start + 50.3));
    diffs.insert((b - a).ns());
  }
  ASSERT_EQ(diffs.size(), 2u);
  const auto lo = *diffs.begin();
  const auto hi = *diffs.rbegin();
  EXPECT_EQ(hi - lo, 15'625'000);
  EXPECT_NEAR(static_cast<double>(lo) / 1e6, 46.875, 1e-6);
}

TEST(QuantizedClockTest, ReadNoiseShiftsBackwardOnly) {
  QuantizedClock::Config cfg = fixed_1ms();
  cfg.read_noise = sim::Duration::millis(10);
  QuantizedClock clock{cfg, sim::Rng{19}};
  for (double ms = 20; ms < 60; ms += 0.9) {
    const auto r = clock.read(at_ms(ms));
    EXPECT_LE(r, at_ms(ms));
    EXPECT_GT(r, at_ms(ms - 12.0));
  }
}

TEST(ClockSetTest, WindowsJavaClockIsBimodalUbuntuIsNot) {
  ClockSet win{OsId::kWindows7, sim::Rng{20}};
  ClockSet ubu{OsId::kUbuntu, sim::Rng{21}};
  std::set<std::int64_t> win_g, ubu_g;
  for (double s = 0; s < 3600; s += 7) {
    win_g.insert(win.java_date().granularity_at(at_ms(s * 1000)).ns());
    ubu_g.insert(ubu.java_date().granularity_at(at_ms(s * 1000)).ns());
  }
  EXPECT_EQ(win_g.size(), 2u);
  EXPECT_EQ(ubu_g.size(), 1u);
}

TEST(ClockSetTest, GetMapsKinds) {
  ClockSet cs{OsId::kWindows7, sim::Rng{22}};
  EXPECT_EQ(cs.get(ClockKind::kJsDate).name(), "Date.getTime");
  EXPECT_EQ(cs.get(ClockKind::kFlashDate).name(), "Date.getTime");
  EXPECT_EQ(cs.get(ClockKind::kJavaDate).name(), "Date.getTime");
  EXPECT_EQ(cs.get(ClockKind::kJavaNano).name(), "System.nanoTime");
  EXPECT_EQ(&cs.get(ClockKind::kJavaDate), &cs.java_date());
}

TEST(ClockSetTest, JsAndJavaClocksAreIndependentInstances) {
  ClockSet cs{OsId::kWindows7, sim::Rng{23}};
  EXPECT_NE(static_cast<TimingApi*>(&cs.js_date()),
            static_cast<TimingApi*>(&cs.java_date()));
}

}  // namespace
}  // namespace bnm::browser
