#include <gtest/gtest.h>

#include "net_fixture.h"

namespace bnm::net {
namespace {

using test::TwoHostFixture;

class UdpTest : public TwoHostFixture {};

TEST_F(UdpTest, EchoRoundtrip) {
  std::shared_ptr<UdpSocket> srv;
  srv = server->udp_open(9001, [&](Endpoint src, const Payload& d) {
    srv->send_to(src, d);
  });

  std::string got;
  Endpoint from;
  auto cli = client->udp_open([&](Endpoint src, const Payload& d) {
    got = to_string(d);
    from = src;
  });
  cli->send_to(server_ep(9001), to_bytes("probe"));
  run_all();
  EXPECT_EQ(got, "probe");
  EXPECT_EQ(from, server_ep(9001));
  EXPECT_EQ(cli->datagrams_sent(), 1u);
  EXPECT_EQ(cli->datagrams_received(), 1u);
  EXPECT_EQ(srv->datagrams_received(), 1u);
}

TEST_F(UdpTest, UnboundPortSilentlyDrops) {
  auto cli = client->udp_open([](Endpoint, const Payload&) {
    FAIL() << "nothing should come back";
  });
  cli->send_to(server_ep(4242), to_bytes("void"));
  run_all();
  EXPECT_EQ(cli->datagrams_received(), 0u);
}

TEST_F(UdpTest, EphemeralPortsAreDistinct) {
  auto s1 = client->udp_open([](Endpoint, const Payload&) {});
  auto s2 = client->udp_open([](Endpoint, const Payload&) {});
  EXPECT_NE(s1->local_port(), s2->local_port());
  EXPECT_GE(s1->local_port(), 49152);
}

TEST_F(UdpTest, RttMatchesTopologyDelays) {
  std::shared_ptr<UdpSocket> srv;
  srv = server->udp_open(9001, [&](Endpoint src, const Payload& d) {
    srv->send_to(src, d);
  });
  sim::TimePoint sent, got;
  auto cli = client->udp_open([&](Endpoint, const Payload&) {
    got = sim->now();
  });
  sent = sim->now();
  cli->send_to(server_ep(9001), to_bytes("t"));
  run_all();
  const double rtt_us = (got - sent).us_f();
  // 2x (stack 10us *2 + two links' serialization ~6us + 2x prop 5us + switch 3us)
  EXPECT_GT(rtt_us, 40.0);
  EXPECT_LT(rtt_us, 200.0);
}

class NetemHostTest : public TwoHostFixture {
 protected:
  void SetUp() override {
    server_netem_ms = 50;
    build();
  }
};

TEST_F(NetemHostTest, ServerEgressDelayShapesRtt) {
  std::shared_ptr<UdpSocket> srv;
  srv = server->udp_open(9001, [&](Endpoint src, const Payload& d) {
    srv->send_to(src, d);
  });
  sim::TimePoint sent, got;
  auto cli = client->udp_open([&](Endpoint, const Payload&) {
    got = sim->now();
  });
  sent = sim->now();
  cli->send_to(server_ep(9001), to_bytes("t"));
  run_all();
  const double rtt_ms = (got - sent).ms_f();
  EXPECT_GT(rtt_ms, 50.0);
  EXPECT_LT(rtt_ms, 51.0);
}

TEST_F(NetemHostTest, CaptureSitsOutsideTheStackDelay) {
  // The capture tap timestamps at the NIC; host stack delay (10us each
  // way) must not appear between a packet's wire arrival and its record.
  std::shared_ptr<UdpSocket> srv;
  srv = server->udp_open(9001, [&](Endpoint src, const Payload& d) {
    srv->send_to(src, d);
  });
  auto cli = client->udp_open([](Endpoint, const Payload&) {});
  cli->send_to(server_ep(9001), to_bytes("x"));
  run_all();
  const auto out = client->capture().first(PacketCapture::outbound_data());
  const auto in = client->capture().first(PacketCapture::inbound_data());
  ASSERT_TRUE(out && in);
  const double net_rtt = (in->timestamp - out->timestamp).ms_f();
  EXPECT_GT(net_rtt, 50.0);
  EXPECT_LT(net_rtt, 50.5);
}

TEST_F(UdpTest, HostIgnoresPacketsForOtherIps) {
  // Deliver a packet addressed elsewhere straight to the client NIC: the
  // capture sees it (promiscuous tap), the stack must drop it.
  Packet p;
  p.protocol = Protocol::kUdp;
  p.src = {IpAddress{10, 0, 0, 9}, 1};
  p.dst = {IpAddress{10, 0, 0, 77}, 9001};
  bool delivered = false;
  auto sock = client->udp_open(9001, [&](Endpoint, const Payload&) {
    delivered = true;
  });
  client->handle_packet(p);
  run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(client->capture().size(), 1u);
}

}  // namespace
}  // namespace bnm::net
