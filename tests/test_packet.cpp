#include <gtest/gtest.h>

#include "net/packet.h"

namespace bnm::net {
namespace {

TEST(Packet, TcpSizes) {
  Packet p;
  p.protocol = Protocol::kTcp;
  EXPECT_EQ(p.ip_size(), kIpHeaderBytes + kTcpHeaderBytes);
  p.payload = to_bytes("hello");
  EXPECT_EQ(p.ip_size(), kIpHeaderBytes + kTcpHeaderBytes + 5);
  EXPECT_EQ(p.wire_size(), p.ip_size() + kEthernetOverheadBytes);
}

TEST(Packet, UdpSizes) {
  Packet p;
  p.protocol = Protocol::kUdp;
  p.payload = to_bytes("xy");
  EXPECT_EQ(p.ip_size(), kIpHeaderBytes + kUdpHeaderBytes + 2);
}

TEST(Packet, PureAckDetection) {
  Packet p;
  p.protocol = Protocol::kTcp;
  p.flags.ack = true;
  EXPECT_TRUE(p.is_pure_ack());
  p.payload = to_bytes("x");
  EXPECT_FALSE(p.is_pure_ack());
  p.payload.clear();
  p.flags.syn = true;
  EXPECT_FALSE(p.is_pure_ack());  // SYN-ACK is not a pure ack
  p.flags.syn = false;
  p.flags.fin = true;
  EXPECT_FALSE(p.is_pure_ack());
}

TEST(Packet, CarriesData) {
  Packet p;
  EXPECT_FALSE(p.carries_data());
  p.payload = to_bytes("z");
  EXPECT_TRUE(p.carries_data());
}

TEST(TcpFlagsTest, ToString) {
  TcpFlags f;
  EXPECT_EQ(f.to_string(), "-");
  f.syn = true;
  EXPECT_EQ(f.to_string(), "S");
  f.ack = true;
  EXPECT_EQ(f.to_string(), "S.");
  f = TcpFlags{};
  f.fin = true;
  f.psh = true;
  f.ack = true;
  EXPECT_EQ(f.to_string(), "FP.");
  f = TcpFlags{};
  f.rst = true;
  EXPECT_EQ(f.to_string(), "R");
}

TEST(Packet, ToStringMentionsEndpointsAndFlags) {
  Packet p;
  p.id = 12;
  p.protocol = Protocol::kTcp;
  p.src = {IpAddress{10, 0, 0, 1}, 5000};
  p.dst = {IpAddress{10, 0, 0, 2}, 80};
  p.flags.syn = true;
  p.seq = 100;
  const std::string s = p.to_string();
  EXPECT_NE(s.find("10.0.0.1:5000"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.2:80"), std::string::npos);
  EXPECT_NE(s.find("[S]"), std::string::npos);
  EXPECT_NE(s.find("seq=100"), std::string::npos);
}

TEST(Bytes, RoundTrip) {
  const std::string s = "the quick brown fox\x01\x02";
  EXPECT_EQ(to_string(to_bytes(s)), s);
  EXPECT_TRUE(to_bytes("").empty());
}

}  // namespace
}  // namespace bnm::net
