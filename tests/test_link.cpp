#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"
#include "sim/simulation.h"

namespace bnm::net {
namespace {

class Collector : public PacketSink {
 public:
  explicit Collector(sim::Simulation& sim) : sim_{sim} {}
  void handle_packet(Packet p) override {
    packets.push_back(p);
    times.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<sim::TimePoint> times;

 private:
  sim::Simulation& sim_;
};

Packet make_packet(std::size_t payload_bytes) {
  Packet p;
  p.protocol = Protocol::kTcp;
  p.payload.assign(payload_bytes, 0xAA);
  return p;
}

class LinkTest : public ::testing::Test {
 protected:
  void build(Link::Config cfg) {
    link = std::make_unique<Link>(sim, cfg);
    a = std::make_unique<Collector>(sim);
    b = std::make_unique<Collector>(sim);
    link->attach(Link::Side::kA, a.get());
    link->attach(Link::Side::kB, b.get());
  }

  sim::Simulation sim{1};
  std::unique_ptr<Link> link;
  std::unique_ptr<Collector> a, b;
};

TEST_F(LinkTest, DeliveryTimeIsSerializationPlusPropagation) {
  Link::Config cfg;
  cfg.bandwidth_bps = 100e6;
  cfg.propagation = sim::Duration::micros(5);
  build(cfg);

  const Packet p = make_packet(960);  // wire = 960 + 40 + 38 = 1038 B
  const sim::Duration ser = link->serialization_delay(p);
  EXPECT_NEAR(ser.us_f(), 1038.0 * 8.0 / 100.0, 0.01);  // 83.04 us

  link->transmit(Link::Side::kA, p);
  sim.scheduler().run();
  ASSERT_EQ(b->packets.size(), 1u);
  EXPECT_EQ(b->times[0] - sim::TimePoint::epoch(),
            ser + cfg.propagation);
  EXPECT_TRUE(a->packets.empty());  // nothing delivered back to the sender
}

TEST_F(LinkTest, TransmitterSerializesBackToBack) {
  Link::Config cfg;
  cfg.bandwidth_bps = 100e6;
  cfg.propagation = sim::Duration::micros(5);
  build(cfg);

  const Packet p = make_packet(1460);
  const sim::Duration ser = link->serialization_delay(p);
  link->transmit(Link::Side::kA, p);
  link->transmit(Link::Side::kA, p);
  link->transmit(Link::Side::kA, p);
  sim.scheduler().run();
  ASSERT_EQ(b->packets.size(), 3u);
  // Queueing: packet k completes serialization at (k+1)*ser.
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(b->times[static_cast<std::size_t>(k)] - sim::TimePoint::epoch(),
              ser * (k + 1) + cfg.propagation);
  }
}

TEST_F(LinkTest, DirectionsAreIndependent) {
  Link::Config cfg;
  build(cfg);
  link->transmit(Link::Side::kA, make_packet(100));
  link->transmit(Link::Side::kB, make_packet(100));
  sim.scheduler().run();
  EXPECT_EQ(a->packets.size(), 1u);
  EXPECT_EQ(b->packets.size(), 1u);
  // Same size, same start: both arrive at the same instant.
  EXPECT_EQ(a->times[0], b->times[0]);
}

TEST_F(LinkTest, FifoOrderPreserved) {
  Link::Config cfg;
  build(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) {
    Packet p = make_packet(64 + i);
    p.id = i;
    link->transmit(Link::Side::kA, std::move(p));
  }
  sim.scheduler().run();
  ASSERT_EQ(b->packets.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(b->packets[i].id, i);
}

TEST_F(LinkTest, LossDropsApproximatelyAtConfiguredRate) {
  Link::Config cfg;
  cfg.loss_probability = 0.3;
  cfg.queue_limit_packets = 100000;  // isolate loss from tail-drop
  build(cfg);
  const int n = 2000;
  for (int i = 0; i < n; ++i) link->transmit(Link::Side::kA, make_packet(64));
  sim.scheduler().run();
  const double delivered = static_cast<double>(b->packets.size());
  EXPECT_NEAR(delivered / n, 0.7, 0.05);
  EXPECT_EQ(link->drops(Link::Side::kA) + b->packets.size(),
            static_cast<std::uint64_t>(n));
}

TEST_F(LinkTest, QueueLimitTailDrops) {
  Link::Config cfg;
  cfg.queue_limit_packets = 5;
  build(cfg);
  for (int i = 0; i < 10; ++i) link->transmit(Link::Side::kA, make_packet(1460));
  sim.scheduler().run();
  EXPECT_EQ(b->packets.size(), 5u);
  EXPECT_EQ(link->drops(Link::Side::kA), 5u);
}

TEST_F(LinkTest, DeliveredCounter) {
  Link::Config cfg;
  build(cfg);
  link->transmit(Link::Side::kA, make_packet(64));
  link->transmit(Link::Side::kB, make_packet(64));
  sim.scheduler().run();
  EXPECT_EQ(link->delivered(Link::Side::kA), 1u);
  EXPECT_EQ(link->delivered(Link::Side::kB), 1u);
}

TEST_F(LinkTest, SlowerLinkDeliversLater) {
  Link::Config fast;
  fast.bandwidth_bps = 100e6;
  Link::Config slow;
  slow.bandwidth_bps = 10e6;
  sim::Simulation sim2{2};
  Link lf{sim2, fast}, ls{sim2, slow};
  Collector cf{sim2}, cs{sim2};
  lf.attach(Link::Side::kB, &cf);
  ls.attach(Link::Side::kB, &cs);
  lf.transmit(Link::Side::kA, make_packet(1000));
  ls.transmit(Link::Side::kA, make_packet(1000));
  sim2.scheduler().run();
  ASSERT_EQ(cf.packets.size(), 1u);
  ASSERT_EQ(cs.packets.size(), 1u);
  EXPECT_LT(cf.times[0], cs.times[0]);
}

}  // namespace
}  // namespace bnm::net
