#include <gtest/gtest.h>

#include <sstream>

#include "net/capture.h"
#include "net/pcap_reader.h"
#include "net/pcap_writer.h"
#include "sim/simulation.h"

namespace bnm::net {
namespace {

Packet sample_tcp() {
  Packet p;
  p.id = 7;
  p.protocol = Protocol::kTcp;
  p.src = {IpAddress{10, 0, 0, 1}, 49200};
  p.dst = {IpAddress{10, 0, 0, 2}, 80};
  p.flags.ack = true;
  p.flags.psh = true;
  p.seq = 123456;
  p.ack = 654321;
  p.payload = to_bytes("GET / HTTP/1.1\r\n\r\n");
  return p;
}

Packet sample_udp() {
  Packet p;
  p.protocol = Protocol::kUdp;
  p.src = {IpAddress{10, 0, 0, 1}, 50001};
  p.dst = {IpAddress{10, 0, 0, 2}, 9001};
  p.payload = to_bytes("probe");
  return p;
}

TEST(PcapReader, ParseFrameRoundTripsTcp) {
  const Packet original = sample_tcp();
  const auto parsed =
      PcapReader::parse_frame(PcapWriter::synthesize_frame(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->protocol, Protocol::kTcp);
  EXPECT_EQ(parsed->src, original.src);
  EXPECT_EQ(parsed->dst, original.dst);
  EXPECT_EQ(parsed->seq, original.seq);
  EXPECT_EQ(parsed->ack, original.ack);
  EXPECT_EQ(parsed->flags, original.flags);
  EXPECT_EQ(parsed->payload, original.payload);
}

TEST(PcapReader, ParseFrameRoundTripsUdp) {
  const Packet original = sample_udp();
  const auto parsed =
      PcapReader::parse_frame(PcapWriter::synthesize_frame(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->protocol, Protocol::kUdp);
  EXPECT_EQ(parsed->src, original.src);
  EXPECT_EQ(parsed->dst, original.dst);
  EXPECT_EQ(to_string(parsed->payload), "probe");
}

TEST(PcapReader, ParseFrameRejectsGarbage) {
  EXPECT_FALSE(PcapReader::parse_frame({}).has_value());
  EXPECT_FALSE(PcapReader::parse_frame(Payload{std::string{"too short"}}).has_value());
  std::vector<std::uint8_t> frame = PcapWriter::synthesize_frame(sample_tcp());
  frame[0] = 0x65;  // IPv6-ish version nibble
  EXPECT_FALSE(PcapReader::parse_frame(frame).has_value());
}

TEST(PcapReader, StreamRoundTripPreservesTimestampsAndOrder) {
  sim::Simulation sim{1};
  PacketCapture cap{sim};
  sim.scheduler().schedule_after(sim::Duration::millis(5), [&] {
    cap.record(CaptureDirection::kOutbound, sample_tcp());
  });
  sim.scheduler().schedule_after(sim::Duration::millis(55), [&] {
    cap.record(CaptureDirection::kInbound, sample_udp());
  });
  sim.scheduler().run();

  std::stringstream buf;
  PcapWriter::write(cap, buf);
  const auto result = PcapReader::read(buf);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].packet.protocol, Protocol::kTcp);
  EXPECT_EQ(result.records[1].packet.protocol, Protocol::kUdp);
  // Microsecond timestamp fidelity.
  EXPECT_EQ(result.records[0].timestamp.ns_since_epoch(), 5'000'000);
  EXPECT_EQ(result.records[1].timestamp.ns_since_epoch(), 55'000'000);
}

TEST(PcapReader, RejectsBadMagic) {
  std::stringstream buf;
  buf << "not a pcap file at all";
  const auto result = PcapReader::read(buf);
  EXPECT_EQ(result.error, PcapReader::Error::kBadMagic);
}

TEST(PcapReader, DetectsTruncation) {
  sim::Simulation sim{2};
  PacketCapture cap{sim};
  cap.record(CaptureDirection::kOutbound, sample_tcp());
  std::stringstream buf;
  PcapWriter::write(cap, buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 5);  // chop the last record
  std::stringstream cut{bytes};
  const auto result = PcapReader::read(cut);
  EXPECT_EQ(result.error, PcapReader::Error::kTruncated);
}

TEST(PcapReader, EmptyCaptureReadsCleanly) {
  sim::Simulation sim{3};
  PacketCapture cap{sim};
  std::stringstream buf;
  PcapWriter::write(cap, buf);
  const auto result = PcapReader::read(buf);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.link_type, PcapWriter::kLinkTypeRaw);
}

TEST(PcapReader, FileRoundTrip) {
  sim::Simulation sim{4};
  PacketCapture cap{sim};
  cap.record(CaptureDirection::kOutbound, sample_udp());
  const std::string path = ::testing::TempDir() + "/bnm_reader_test.pcap";
  PcapWriter::write_file(cap, path);
  const auto result = PcapReader::read_file(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(PcapReader, MissingFileErrors) {
  const auto result = PcapReader::read_file("/nonexistent/nope.pcap");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace bnm::net
