#include <gtest/gtest.h>

#include "http/parser.h"

namespace bnm::http {
namespace {

TEST(RequestParser, SimpleGet) {
  RequestParser p;
  p.feed("GET /echo?x=1 HTTP/1.1\r\nHost: h\r\n\r\n");
  const auto req = p.take();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/echo?x=1");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->headers.get("host"), "h");
  EXPECT_TRUE(req->body.empty());
}

TEST(RequestParser, PostWithContentLength) {
  RequestParser p;
  p.feed("POST /sink HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  const auto req = p.take();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "hello");
}

TEST(RequestParser, IncompleteBodyWaits) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
  EXPECT_FALSE(p.take().has_value());
  p.feed("lo");
  EXPECT_TRUE(p.take().has_value());
}

TEST(RequestParser, ByteAtATime) {
  const std::string wire =
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\nX-Y: z\r\n\r\nabc";
  RequestParser p;
  for (char c : wire) {
    EXPECT_FALSE(p.failed());
    p.feed(std::string(1, c));
  }
  const auto req = p.take();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "abc");
  EXPECT_EQ(req->headers.get("x-y"), "z");
}

TEST(RequestParser, PipelinedRequests) {
  RequestParser p;
  p.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  const auto r1 = p.take();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->target, "/a");
  const auto r2 = p.take();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->target, "/b");
  EXPECT_FALSE(p.take().has_value());
}

TEST(RequestParser, ToleratesLeadingBlankLines) {
  RequestParser p;
  p.feed("\r\n\r\nGET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(p.take().has_value());
}

TEST(RequestParser, HeaderWhitespaceTrimmed) {
  RequestParser p;
  p.feed("GET / HTTP/1.1\r\nName:   padded value  \r\n\r\n");
  const auto req = p.take();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->headers.get("name"), "padded value");
}

TEST(RequestParser, BadStartLineFails) {
  RequestParser p;
  p.feed("NONSENSE\r\n\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.error(), ParseError::kBadStartLine);
  EXPECT_FALSE(p.take().has_value());
}

TEST(RequestParser, NonHttpVersionFails) {
  RequestParser p;
  p.feed("GET / SPDY/3\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, BadHeaderFails) {
  RequestParser p;
  p.feed("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.error(), ParseError::kBadHeader);
}

TEST(RequestParser, BodyLimitEnforced) {
  RequestParser p;
  p.set_body_limit(10);
  p.feed("POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.error(), ParseError::kBodyTooLarge);
}

TEST(RequestParser, ChunkedBody) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
         "3\r\nabc\r\n4\r\ndefg\r\n0\r\n\r\n");
  const auto req = p.take();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "abcdefg");
}

TEST(RequestParser, ChunkedByteAtATime) {
  const std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n";
  RequestParser p;
  for (char c : wire) p.feed(std::string(1, c));
  const auto req = p.take();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "hello");
}

TEST(RequestParser, BadChunkSizeFails) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.error(), ParseError::kBadChunk);
}

TEST(RequestParser, ChunkMissingCrlfFails) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
         "3\r\nabcXX");
  EXPECT_TRUE(p.failed());
}

TEST(ResponseParser, SimpleResponse) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\npong");
  const auto resp = p.take();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->reason, "OK");
  EXPECT_EQ(resp->body, "pong");
}

TEST(ResponseParser, MultiWordReason) {
  ResponseParser p;
  p.feed("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
  const auto resp = p.take();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->reason, "Not Found");
}

TEST(ResponseParser, CloseDelimitedBody) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\n\r\npartial body");
  EXPECT_FALSE(p.take().has_value());  // no framing: wait for FIN
  p.feed(" more");
  p.on_connection_closed();
  const auto resp = p.take();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body, "partial body more");
}

TEST(ResponseParser, ZeroLengthBodyCompletesImmediately) {
  ResponseParser p;
  p.feed("HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n");
  EXPECT_TRUE(p.take().has_value());
}

TEST(ResponseParser, KeepAliveSequenceOnOneConnection) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nA"
         "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nB");
  const auto r1 = p.take();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->body, "A");
  const auto r2 = p.take();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->body, "B");
}

TEST(ResponseParser, BadStatusFails) {
  ResponseParser p;
  p.feed("HTTP/1.1 9999 Weird\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(ResponseParser, ChunkedResponse) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
         "6\r\nchunky\r\n0\r\n\r\n");
  const auto resp = p.take();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body, "chunky");
}

// Property: any (method, target, body) round-trips through serialize+parse,
// fed in every possible two-way split.
class RoundTripSplit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoundTripSplit, SerializeParseAnySplit) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/path/to/resource?k=v";
  req.headers.set("Host", "10.0.0.2:80");
  req.headers.set("X-Probe", "rtt");
  req.body = "0123456789";
  const std::string wire = req.serialize();
  const std::size_t split = GetParam() % wire.size();

  RequestParser p;
  p.feed(wire.substr(0, split));
  p.feed(wire.substr(split));
  const auto out = p.take();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->method, req.method);
  EXPECT_EQ(out->target, req.target);
  EXPECT_EQ(out->body, req.body);
  EXPECT_EQ(out->headers.get("x-probe"), "rtt");
}

INSTANTIATE_TEST_SUITE_P(Splits, RoundTripSplit,
                         ::testing::Values(0, 1, 5, 17, 30, 42, 55, 70, 88));

}  // namespace
}  // namespace bnm::http
