// DomainScheduler coverage: windowed round protocol, serial/threaded
// bit-identity, fallback behaviour, and the acceptance-gate test — a
// two-host UDP topology cut along a DomainLink runs bit-identical to the
// same topology as a monolithic single-Simulation serial run.
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/domain_link.h"
#include "net/host.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/domain.h"
#include "sim/simulation.h"

namespace {

using bnm::sim::DomainScheduler;
using bnm::sim::Duration;
using bnm::sim::Simulation;
using bnm::sim::TimePoint;

TEST(DomainScheduler, SingleDomainRunsSeriallyAndPinsClock) {
  Simulation sim{1};
  DomainScheduler ds;
  ds.add_domain(sim);
  int ran = 0;
  sim.scheduler().schedule_after(Duration::millis(1), [&] { ++ran; });
  sim.scheduler().schedule_after(Duration::millis(2), [&] { ++ran; });
  const TimePoint deadline = TimePoint::epoch() + Duration::millis(5);
  ds.run_until(deadline);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), deadline);
  EXPECT_FALSE(ds.parallel_active());
}

TEST(DomainScheduler, LookaheadIsMinimumChannelLatency) {
  Simulation a{1}, b{2};
  DomainScheduler ds;
  const auto da = ds.add_domain(a);
  const auto db = ds.add_domain(b);
  EXPECT_EQ(ds.lookahead(), Duration::max());  // no channels: independent
  ds.add_channel(da, db, Duration::millis(3));
  ds.add_channel(db, da, Duration::millis(1));
  EXPECT_EQ(ds.lookahead(), Duration::millis(1));
}

// Ping-pong a token between two domains through post_remote and record
// (domain, time) at every hop; the log must be identical however the
// domains are driven.
std::vector<std::pair<int, std::int64_t>> ping_pong(
    DomainScheduler::Mode mode, std::uint64_t* rounds_out = nullptr) {
  Simulation a{1}, b{2};
  DomainScheduler ds{mode};
  const auto da = ds.add_domain(a);
  const auto db = ds.add_domain(b);
  const auto ab = ds.add_channel(da, db, Duration::millis(1));
  const auto ba = ds.add_channel(db, da, Duration::millis(1));

  std::vector<std::pair<int, std::int64_t>> log;
  std::function<void(int)> bounce_a;
  std::function<void(int)> bounce_b = [&](int left) {
    log.emplace_back(1, b.now().ns_since_epoch());
    if (left > 0) {
      ds.post_remote(ba, Duration::micros(10), [&, left] {
        bounce_a(left - 1);
      });
    }
  };
  bounce_a = [&](int left) {
    log.emplace_back(0, a.now().ns_since_epoch());
    if (left > 0) {
      ds.post_remote(ab, Duration::micros(10), [&, left] {
        bounce_b(left - 1);
      });
    }
  };
  a.scheduler().post_after(Duration::micros(5), [&] { bounce_a(10); });
  ds.run_until(TimePoint::epoch() + Duration::seconds(1));
  if (rounds_out) *rounds_out = ds.stats().rounds;
  EXPECT_EQ(ds.stats().remote_events, 10u);
  return log;
}

TEST(DomainScheduler, PingPongSerialAndThreadedAreBitIdentical) {
  std::uint64_t serial_rounds = 0;
  const auto serial = ping_pong(DomainScheduler::Mode::kSerial, &serial_rounds);
  const auto threaded = ping_pong(DomainScheduler::Mode::kThreads);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial, threaded);
  EXPECT_GE(serial_rounds, 11u);  // at least one window per hop
  // Hop timing: each leg adds 1ms latency + 10us slack.
  EXPECT_EQ(serial[0], (std::pair<int, std::int64_t>{0, 5'000}));
  EXPECT_EQ(serial[1], (std::pair<int, std::int64_t>{1, 1'015'000}));
}

TEST(DomainScheduler, ThreadedModeReportsParallelAndSerialDoesNot) {
  {
    Simulation a{1}, b{2};
    DomainScheduler ds{DomainScheduler::Mode::kThreads};
    ds.add_channel(ds.add_domain(a), ds.add_domain(b), Duration::millis(1));
    a.scheduler().post_after(Duration::micros(1), [] {});
    ds.run_until(TimePoint::epoch() + Duration::millis(1));
    EXPECT_TRUE(ds.parallel_active());
    EXPECT_GE(ds.stats().threaded_rounds, 1u);
  }
  {
    Simulation a{1}, b{2};
    DomainScheduler ds{DomainScheduler::Mode::kSerial};
    ds.add_channel(ds.add_domain(a), ds.add_domain(b), Duration::millis(1));
    a.scheduler().post_after(Duration::micros(1), [] {});
    ds.run_until(TimePoint::epoch() + Duration::millis(1));
    EXPECT_FALSE(ds.parallel_active());
    EXPECT_EQ(ds.stats().threaded_rounds, 0u);
  }
}

// ---------------------------------------------------------------------------
// Acceptance gate: two hosts exchanging UDP echo traffic, once as a
// monolithic Simulation joined by a Link, once split into two domains
// joined by a DomainLink with the same bandwidth/propagation. Every
// delivery timestamp must match bit-for-bit, in serial and threaded mode.

constexpr std::uint64_t kSeed = 42;
constexpr int kProbes = 20;

struct TopologyResult {
  std::vector<std::int64_t> client_recv_ns;
  std::uint64_t echoed = 0;
};

bnm::net::Host::Config client_config() {
  bnm::net::Host::Config c;
  c.name = "client";
  c.ip = bnm::net::IpAddress{10, 0, 0, 1};
  return c;
}

bnm::net::Host::Config server_config() {
  bnm::net::Host::Config c;
  c.name = "server";
  c.ip = bnm::net::IpAddress{10, 0, 0, 2};
  return c;
}

template <typename RunFn>
TopologyResult exercise(Simulation& client_sim, bnm::net::Host& client,
                        bnm::net::Host& server, RunFn run_all) {
  TopologyResult out;
  std::shared_ptr<bnm::net::UdpSocket> echo;
  echo = server.udp_open(
      9000, [&](bnm::net::Endpoint from, const bnm::net::Payload& p) {
        echo->send_to(from, p);
      });
  std::shared_ptr<bnm::net::UdpSocket> probe;
  probe = client.udp_open(
      5000, [&](bnm::net::Endpoint, const bnm::net::Payload&) {
        out.client_recv_ns.push_back(client_sim.now().ns_since_epoch());
      });
  const bnm::net::Endpoint server_ep{bnm::net::IpAddress{10, 0, 0, 2}, 9000};
  for (int i = 0; i < kProbes; ++i) {
    client_sim.scheduler().post_at(
        TimePoint::epoch() + Duration::micros(137 * (i + 1)),
        [&probe, server_ep, i] {
          probe->send_to(server_ep,
                         bnm::net::to_bytes("probe-" + std::to_string(i)));
        });
  }
  run_all();
  out.echoed = echo->datagrams_received();
  return out;
}

TopologyResult run_monolithic() {
  Simulation sim{kSeed};
  bnm::net::Host client{sim, client_config()};
  bnm::net::Host server{sim, server_config()};
  bnm::net::Link::Config lc;
  lc.propagation = Duration::micros(200);
  lc.name = "wan";
  bnm::net::Link link{sim, lc};
  client.attach_link(&link, bnm::net::LinkSide::kA);
  server.attach_link(&link, bnm::net::LinkSide::kB);
  return exercise(sim, client, server, [&] {
    sim.scheduler().run_until(TimePoint::epoch() + Duration::millis(100));
  });
}

TopologyResult run_partitioned(DomainScheduler::Mode mode) {
  // Same seed for both domains: each component forks its RNG stream by its
  // own label, so "client"/"server" draw the same streams they drew inside
  // the monolithic simulation.
  Simulation client_sim{kSeed};
  Simulation server_sim{kSeed};
  DomainScheduler ds{mode};
  const auto dc = ds.add_domain(client_sim);
  const auto dsrv = ds.add_domain(server_sim);
  bnm::net::DomainLink::Config lc;
  lc.propagation = Duration::micros(200);
  lc.name = "wan";
  bnm::net::DomainLink link{ds, dc, dsrv, lc};
  bnm::net::Host client{client_sim, client_config()};
  bnm::net::Host server{server_sim, server_config()};
  client.attach_link(&link, bnm::net::LinkSide::kA);
  server.attach_link(&link, bnm::net::LinkSide::kB);
  return exercise(client_sim, client, server, [&] {
    ds.run_until(TimePoint::epoch() + Duration::millis(100));
  });
}

TEST(DomainTopology, PartitionedRunsBitIdenticalToMonolithicSerial) {
  const TopologyResult mono = run_monolithic();
  ASSERT_EQ(mono.client_recv_ns.size(), static_cast<std::size_t>(kProbes));
  EXPECT_EQ(mono.echoed, static_cast<std::uint64_t>(kProbes));

  const TopologyResult serial = run_partitioned(DomainScheduler::Mode::kSerial);
  EXPECT_EQ(serial.client_recv_ns, mono.client_recv_ns);
  EXPECT_EQ(serial.echoed, mono.echoed);

  const TopologyResult threaded =
      run_partitioned(DomainScheduler::Mode::kThreads);
  EXPECT_EQ(threaded.client_recv_ns, mono.client_recv_ns);
  EXPECT_EQ(threaded.echoed, mono.echoed);
}

TEST(DomainTopology, AutoModeFallsBackCleanlyOnThisHardware) {
  // kAuto must produce the same results whether or not it engaged threads;
  // on a single-core host it falls back to the serial driver.
  const TopologyResult mono = run_monolithic();
  const TopologyResult auto_run = run_partitioned(DomainScheduler::Mode::kAuto);
  EXPECT_EQ(auto_run.client_recv_ns, mono.client_recv_ns);
}

}  // namespace
