// Shared two-host network fixture for transport/application tests:
//   client (10.0.0.1) -- link -- switch -- link -- server (10.0.0.2)
// No netem delay by default; tests that need one set `server_netem_ms`
// before calling build().
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "net/fault.h"
#include "net/host.h"
#include "net/link.h"
#include "net/switch_fabric.h"
#include "sim/simulation.h"

namespace bnm::test {

class TwoHostFixture : public ::testing::Test {
 protected:
  void build() {
    sim = std::make_unique<sim::Simulation>(seed);

    net::Host::Config cc;
    cc.name = "client";
    cc.ip = net::IpAddress{10, 0, 0, 1};
    cc.tcp = tcp_config;
    cc.egress_faults = client_egress_faults;
    cc.ingress_faults = client_ingress_faults;
    client = std::make_unique<net::Host>(*sim, cc);

    net::Host::Config sc;
    sc.name = "server";
    sc.ip = net::IpAddress{10, 0, 0, 2};
    sc.tcp = tcp_config;
    sc.ingress_faults = server_ingress_faults;
    if (server_netem_ms > 0) {
      net::DelayEmulator::Config nm;
      nm.delay = sim::Duration::millis(server_netem_ms);
      sc.egress_netem = nm;
    }
    server = std::make_unique<net::Host>(*sim, sc);

    net::Link::Config lc;
    lc.bandwidth_bps = 100e6;
    lc.propagation = sim::Duration::micros(5);
    lc.name = "l1";
    link1 = std::make_unique<net::Link>(*sim, lc);
    lc.name = "l2";
    link2 = std::make_unique<net::Link>(*sim, lc);

    fabric = std::make_unique<net::SwitchFabric>(*sim);
    client->attach_link(link1.get(), net::Link::Side::kA);
    const auto p0 = fabric->add_port(link1.get(), net::Link::Side::kB);
    server->attach_link(link2.get(), net::Link::Side::kB);
    const auto p1 = fabric->add_port(link2.get(), net::Link::Side::kA);
    fabric->learn(client->ip(), p0);
    fabric->learn(server->ip(), p1);
  }

  void SetUp() override { build(); }

  void run_all() { sim->scheduler().run(); }
  void run_for(sim::Duration d) {
    sim->scheduler().run_until(sim->now() + d);
  }

  net::Endpoint server_ep(net::Port port) const {
    return {server->ip(), port};
  }

  std::uint64_t seed = 7;
  int server_netem_ms = 0;
  net::TcpConfig tcp_config{};
  // Set before build() to splice fault stages into the pipeline.
  std::optional<net::FaultPlan> client_egress_faults;
  std::optional<net::FaultPlan> client_ingress_faults;
  std::optional<net::FaultPlan> server_ingress_faults;
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<net::Host> client;
  std::unique_ptr<net::Host> server;
  std::unique_ptr<net::Link> link1;
  std::unique_ptr<net::Link> link2;
  std::unique_ptr<net::SwitchFabric> fabric;
};

}  // namespace bnm::test
