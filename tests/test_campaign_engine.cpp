// Campaign engine contracts (core/campaign.h): shard-layout-independent
// client sampling, byte-identical reports across shard counts and job
// counts, checkpoint/resume identity after a mid-campaign cancellation,
// aggregate JSON round trips, and the campaign.* metrics family.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "core/campaign.h"
#include "obs/metrics.h"
#include "sim/trace.h"

namespace bnm::core {
namespace {

CampaignSpec small_spec(std::uint64_t clients = 60, int shards = 6) {
  CampaignSpec spec;
  spec.seed = 2024;
  spec.clients = clients;
  spec.shards = shards;
  spec.runs_per_client = 1;
  return spec;
}

TEST(CampaignSampler, ClientConfigIsPureInClientIndex) {
  const CampaignSpec spec = small_spec();
  const CampaignSampler a{spec};
  const CampaignSampler b{spec};
  for (std::uint64_t client : {0ull, 1ull, 17ull, 59ull}) {
    std::size_t pa = 0, pb = 0;
    const ExperimentConfig ca = a.client_config(client, &pa);
    const ExperimentConfig cb = b.client_config(client, &pb);
    EXPECT_EQ(pa, pb);
    EXPECT_EQ(ca.browser, cb.browser);
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.seed, cb.seed);
    EXPECT_EQ(ca.testbed.server_delay.ns(), cb.testbed.server_delay.ns());
    EXPECT_EQ(ca.testbed.bandwidth_bps, cb.testbed.bandwidth_bps);
    EXPECT_EQ(ca.testbed.link_loss_probability,
              cb.testbed.link_loss_probability);
  }
  // Different clients draw different seeds (and usually different cases).
  EXPECT_NE(a.client_config(0).seed, a.client_config(1).seed);
}

TEST(CampaignSampler, DefaultMixCoversPaperCases) {
  const CampaignSpec spec = small_spec();
  const CampaignSampler sampler{spec};
  EXPECT_EQ(sampler.profile_count(), browser::paper_cases().size());
  EXPECT_EQ(sampler.profile_labels().front(),
            browser::paper_cases().front().label());
}

TEST(CampaignSampler, MethodMixRespectsCapabilities) {
  CampaignSpec spec = small_spec(200);
  // IE on Windows has no WebSocket (Table 2): a WebSocket-only mix with an
  // IE-only case mix is unsatisfiable.
  spec.cases = {{{browser::BrowserId::kIe, browser::OsId::kWindows7}, 1.0}};
  spec.methods = {{methods::ProbeKind::kWebSocket, 1.0}};
  EXPECT_THROW(CampaignSampler{spec}, std::invalid_argument);

  // With the full default method mix the IE clients simply never draw
  // WebSocket.
  spec.methods.clear();
  const CampaignSampler sampler{spec};
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_NE(sampler.client_config(c).kind, methods::ProbeKind::kWebSocket);
  }
}

TEST(CampaignSpecHash, IgnoresShardLayoutOnly) {
  CampaignSpec a = small_spec();
  CampaignSpec b = a;
  b.shards = 64;  // execution layout: must not change the hash
  EXPECT_EQ(campaign_spec_hash(a), campaign_spec_hash(b));
  b.seed ^= 1;
  EXPECT_NE(campaign_spec_hash(a), campaign_spec_hash(b));
  b = a;
  b.loss_probability += 0.001;
  EXPECT_NE(campaign_spec_hash(a), campaign_spec_hash(b));
}

TEST(Campaign, ReportByteIdenticalAcrossShardAndJobCounts) {
  CampaignOptions serial;
  serial.jobs = 1;
  const CampaignSpec one = small_spec(60, 1);
  const std::string reference =
      campaign_report_json(one, run_campaign(one, serial));

  const CampaignSpec many = small_spec(60, 7);
  EXPECT_EQ(reference, campaign_report_json(many, run_campaign(many, serial)));

  CampaignOptions pooled;
  pooled.jobs = 3;
  EXPECT_EQ(reference, campaign_report_json(many, run_campaign(many, pooled)));
}

TEST(Campaign, CancelThenResumeProducesIdenticalReport) {
  const std::string ck = "test_campaign_resume_ck.json";
  std::remove(ck.c_str());

  const CampaignSpec spec = small_spec(60, 6);
  CampaignOptions clean_opts;
  clean_opts.jobs = 1;
  const std::string clean =
      campaign_report_json(spec, run_campaign(spec, clean_opts));

  // First pass: cancel after two shards; the checkpoint keeps them.
  std::atomic<bool> cancel{false};
  CampaignOptions first;
  first.jobs = 1;
  first.checkpoint = ck;
  first.cancel = &cancel;
  first.progress = [&](std::size_t done, std::size_t) {
    if (done >= 2) cancel.store(true, std::memory_order_release);
  };
  const CampaignResult partial = run_campaign(spec, first);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_LT(partial.shards_run, partial.shards);

  // Second pass: resume; stored shards are merged, the rest execute.
  CampaignOptions second;
  second.jobs = 1;
  second.checkpoint = ck;
  second.resume = true;
  const CampaignResult full = run_campaign(spec, second);
  EXPECT_FALSE(full.cancelled);
  EXPECT_EQ(full.shards_resumed, partial.shards_run);
  EXPECT_EQ(full.shards_run + full.shards_resumed, full.shards);
  EXPECT_EQ(clean, campaign_report_json(spec, full));

  std::remove(ck.c_str());
}

TEST(Campaign, ResumeIgnoresCheckpointFromDifferentSpec) {
  const std::string ck = "test_campaign_mismatch_ck.json";
  std::remove(ck.c_str());

  CampaignSpec spec = small_spec(30, 3);
  CampaignOptions opts;
  opts.jobs = 1;
  opts.checkpoint = ck;
  run_campaign(spec, opts);

  // Same file, different population: every shard must re-run.
  spec.seed ^= 0xdead;
  opts.resume = true;
  const CampaignResult result = run_campaign(spec, opts);
  EXPECT_EQ(result.shards_resumed, 0u);
  EXPECT_EQ(result.shards_run, result.shards);

  std::remove(ck.c_str());
}

TEST(Campaign, AggregateJsonRoundTrip) {
  const CampaignSpec spec = small_spec(40, 1);
  CampaignOptions opts;
  opts.jobs = 1;
  const CampaignResult result = run_campaign(spec, opts);
  ASSERT_GT(result.aggregate.samples, 0u);

  CampaignAggregate back{spec.grid, result.profile_labels.size()};
  ASSERT_TRUE(
      CampaignAggregate::from_json(result.aggregate.to_json(), &back));
  EXPECT_EQ(back.to_json().dump(), result.aggregate.to_json().dump());
  EXPECT_EQ(back.clients, result.aggregate.clients);
  EXPECT_EQ(back.samples, result.aggregate.samples);
}

TEST(Campaign, FoldTracksRttInflationPerClient) {
  const CampaignSpec spec = small_spec(40, 1);
  CampaignOptions opts;
  opts.jobs = 1;
  const CampaignResult result = run_campaign(spec, opts);
  // Two RTT observations per accepted sample feed both sketches.
  EXPECT_EQ(result.aggregate.net_rtt.count(),
            2 * result.aggregate.samples);
  EXPECT_EQ(result.aggregate.rtt_inflation.count(),
            2 * result.aggregate.samples);
  // Inflation is sample − window-min: never negative.
  EXPECT_GE(result.aggregate.rtt_inflation.min(), 0.0);
}

TEST(Campaign, MemoryIsIndependentOfClientCount) {
  CampaignOptions opts;
  opts.jobs = 1;
  const CampaignSpec a = small_spec(20, 2);
  const CampaignSpec b = small_spec(80, 2);
  EXPECT_EQ(run_campaign(a, opts).aggregate.memory_bytes(),
            run_campaign(b, opts).aggregate.memory_bytes());
}

TEST(Campaign, MetricsAndTraceSpansPerShard) {
  const obs::Counter shards_completed =
      obs::MetricsRegistry::instance().counter("campaign.shards_completed",
                                               "shards", "");
  const obs::Counter clients_simulated =
      obs::MetricsRegistry::instance().counter("campaign.clients_simulated",
                                               "clients", "");
  const std::uint64_t shards_before = shards_completed.total();
  const std::uint64_t clients_before = clients_simulated.total();

  sim::Trace trace;
  trace.set_enabled(true);
  const CampaignSpec spec = small_spec(30, 3);
  CampaignOptions opts;
  opts.jobs = 1;
  opts.trace = &trace;
  run_campaign(spec, opts);

  EXPECT_EQ(shards_completed.total() - shards_before, 3u);
  EXPECT_EQ(clients_simulated.total() - clients_before, 30u);

  const sim::TraceView spans = trace.view_by_component("campaign");
  ASSERT_EQ(spans.size(), 3u);
  for (const sim::TraceRecord& rec : spans) {
    EXPECT_EQ(rec.kind, sim::TraceEventKind::kSpan);
    ASSERT_NE(rec.attr("shard"), nullptr);
    ASSERT_NE(rec.attr("clients"), nullptr);
    EXPECT_EQ(std::get<std::int64_t>(rec.attr("clients")->value), 10);
  }
}

TEST(Campaign, ProgressExceptionsAreAbsorbed) {
  const CampaignSpec spec = small_spec(20, 2);
  CampaignOptions opts;
  opts.jobs = 1;
  opts.progress = [](std::size_t, std::size_t) {
    throw std::runtime_error{"progress boom"};
  };
  const CampaignResult result = run_campaign(spec, opts);
  EXPECT_EQ(result.shards_run, 2u);
  EXPECT_EQ(result.progress_errors, 2u);
}

TEST(Campaign, ZeroClientsYieldsEmptyReport) {
  const CampaignSpec spec = small_spec(0, 4);
  CampaignOptions opts;
  opts.jobs = 1;
  const CampaignResult result = run_campaign(spec, opts);
  EXPECT_EQ(result.shards, 1u);
  EXPECT_EQ(result.aggregate.clients, 0u);
  const std::string report = campaign_report_json(spec, result);
  EXPECT_NE(report.find("\"format\":\"bnm-campaign-report\""),
            std::string::npos);
  EXPECT_EQ(report.find("nan"), std::string::npos);  // NaN never serialized
}

}  // namespace
}  // namespace bnm::core
