#include <gtest/gtest.h>

#include "sim/random.h"
#include "stats/kstest.h"

namespace bnm::stats {
namespace {

TEST(KolmogorovQ, BoundaryValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(10.0), 0.0, 1e-12);
  // Known point: Q(1.0) ~ 0.27.
  EXPECT_NEAR(kolmogorov_q(1.0), 0.27, 0.01);
  // Critical value: Q(1.36) ~ 0.049 (the classic 5% threshold).
  EXPECT_NEAR(kolmogorov_q(1.36), 0.049, 0.003);
}

TEST(KolmogorovQ, MonotoneDecreasing) {
  double prev = 1.0;
  for (double l = 0.1; l < 3.0; l += 0.1) {
    const double q = kolmogorov_q(l);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(KsTwoSample, IdenticalSamplesStatZero) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto r = ks_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_FALSE(r.reject());
}

TEST(KsTwoSample, DisjointSamplesStatOne) {
  const auto r = ks_two_sample({1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
                               {20, 21, 22, 23, 24, 25, 26, 27, 28, 29});
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_TRUE(r.reject(0.01));
}

TEST(KsTwoSample, EmptyInputSafe) {
  const auto r = ks_two_sample({}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTwoSample, SameDistributionUsuallyNotRejected) {
  sim::Rng rng{11};
  int rejections = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 50; ++i) {
      a.push_back(rng.normal(5, 2));
      b.push_back(rng.normal(5, 2));
    }
    if (ks_two_sample(a, b).reject(0.05)) ++rejections;
  }
  // Expect ~5% false rejections; allow up to 12%.
  EXPECT_LE(rejections, 12);
}

TEST(KsTwoSample, ShiftedDistributionRejected) {
  sim::Rng rng{12};
  std::vector<double> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.normal(5, 1));
    b.push_back(rng.normal(8, 1));  // 3 sigma shift
  }
  const auto r = ks_two_sample(a, b);
  EXPECT_TRUE(r.reject(0.001));
  EXPECT_GT(r.statistic, 0.5);
}

TEST(KsTwoSample, DifferentSpreadRejected) {
  sim::Rng rng{13};
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.normal(0, 1));
    b.push_back(rng.normal(0, 6));
  }
  EXPECT_TRUE(ks_two_sample(a, b).reject(0.01));
}

TEST(KsTwoSample, SymmetricInArguments) {
  sim::Rng rng{14};
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.uniform(0, 1));
    b.push_back(rng.uniform(0.2, 1.2));
  }
  const auto r1 = ks_two_sample(a, b);
  const auto r2 = ks_two_sample(b, a);
  EXPECT_DOUBLE_EQ(r1.statistic, r2.statistic);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
}

}  // namespace
}  // namespace bnm::stats
