// The full Figure-3 matrix at reduced scale: every method on every
// Table-2 case (plus nanoTime and appletviewer variants) must produce
// clean samples with sane bounds. This is the smoke net under the benches.
//
// Cells go through the parallel matrix runner (core/parallel_runner.h),
// the same entry point the benches use. ctest executes each parameterized
// case in its own process (gtest_discover_tests), so every process runs
// exactly its own cell — run_matrix with a single-cell batch — rather than
// caching the whole matrix per process.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/parallel_runner.h"

namespace bnm::core {
namespace {

struct MatrixCase {
  browser::BrowserOsCase who;
  methods::ProbeKind kind;
};

std::vector<MatrixCase> full_matrix() {
  std::vector<MatrixCase> out;
  for (const auto& c : browser::paper_cases()) {
    for (const auto kind : browser::all_probe_kinds()) {
      out.push_back(MatrixCase{c, kind});
    }
  }
  return out;
}

class FullMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(FullMatrix, FiveRunsProduceSaneOverheads) {
  const auto& param = GetParam();
  const auto profile =
      browser::make_profile(param.who.browser, param.who.os);
  const bool supported =
      param.kind != methods::ProbeKind::kWebSocket || profile.supports_websocket;

  ExperimentConfig cfg;
  cfg.browser = param.who.browser;
  cfg.os = param.who.os;
  cfg.kind = param.kind;
  cfg.runs = 5;
  const auto results = run_matrix({cfg});
  ASSERT_EQ(results.size(), 1u);
  const OverheadSeries& series = results.front();

  if (!supported) {
    EXPECT_TRUE(series.samples.empty());
    EXPECT_EQ(series.failures, 5);
    return;
  }

  ASSERT_EQ(series.samples.size(), 5u) << series.first_error;
  for (const auto& s : series.samples) {
    // Ground truth is always the netem delay plus fractions of a ms.
    EXPECT_GT(s.net_rtt1_ms, 50.0);
    EXPECT_LT(s.net_rtt1_ms, 52.0);
    EXPECT_GT(s.net_rtt2_ms, 50.0);
    EXPECT_LT(s.net_rtt2_ms, 52.0);
    // Overheads stay within the paper's plotted ranges (plus headroom):
    // never below -16 ms (one Windows granule) nor above 250 ms.
    EXPECT_GT(s.d1_ms, -16.0);
    EXPECT_LT(s.d1_ms, 250.0);
    EXPECT_GT(s.d2_ms, -16.0);
    EXPECT_LT(s.d2_ms, 250.0);
  }
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string n = std::string{browser::browser_name(info.param.who.browser)} +
                  "_" + browser::os_initial(info.param.who.os) + "_" +
                  probe_kind_name(info.param.kind);
  for (auto& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(EveryCase, FullMatrix,
                         ::testing::ValuesIn(full_matrix()), matrix_name);

}  // namespace
}  // namespace bnm::core
