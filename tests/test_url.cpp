#include <gtest/gtest.h>

#include "browser/url.h"

namespace bnm::browser {
namespace {

const net::Endpoint kOrigin{net::IpAddress{10, 0, 0, 2}, 80};

TEST(ParseUrl, RelativeResolvesAgainstOrigin) {
  const auto u = parse_url("/echo?r=1", kOrigin);
  ASSERT_TRUE(u.has_value());
  EXPECT_FALSE(u->absolute);
  EXPECT_EQ(u->endpoint, kOrigin);
  EXPECT_EQ(u->path, "/echo?r=1");
}

TEST(ParseUrl, AbsoluteWithPort) {
  const auto u = parse_url("http://10.0.0.3:8088/ws", kOrigin);
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(u->absolute);
  EXPECT_EQ(u->endpoint.ip.to_string(), "10.0.0.3");
  EXPECT_EQ(u->endpoint.port, 8088);
  EXPECT_EQ(u->path, "/ws");
}

TEST(ParseUrl, AbsoluteDefaultsPort80AndRootPath) {
  const auto u = parse_url("http://10.0.0.3", kOrigin);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->endpoint.port, 80);
  EXPECT_EQ(u->path, "/");
}

TEST(ParseUrl, AbsoluteWithPathNoPort) {
  const auto u = parse_url("http://10.0.0.3/crossdomain.xml", kOrigin);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->endpoint.port, 80);
  EXPECT_EQ(u->path, "/crossdomain.xml");
}

TEST(ParseUrl, RejectsMalformed) {
  EXPECT_FALSE(parse_url("", kOrigin).has_value());
  EXPECT_FALSE(parse_url("echo", kOrigin).has_value());
  EXPECT_FALSE(parse_url("ftp://10.0.0.3/x", kOrigin).has_value());
  EXPECT_FALSE(parse_url("http://not-an-ip/x", kOrigin).has_value());
}

}  // namespace
}  // namespace bnm::browser
