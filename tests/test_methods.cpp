#include <gtest/gtest.h>

#include "core/testbed.h"
#include "methods/registry.h"

namespace bnm::methods {
namespace {

using browser::BrowserId;
using browser::OsId;

TEST(Registry, PaperMethodsInFigureOrder) {
  const auto methods = paper_methods();
  ASSERT_EQ(methods.size(), 10u);
  EXPECT_EQ(methods[0]->info().name, "XHR GET");
  EXPECT_EQ(methods[3]->info().name, "WebSocket");
  EXPECT_EQ(methods[9]->info().name, "Java applet TCP socket");
}

TEST(Registry, AllMethodsAddsUdp) {
  const auto methods = all_methods();
  ASSERT_EQ(methods.size(), 11u);
  EXPECT_EQ(methods.back()->info().verb, "UDP");
}

TEST(Registry, MakeMethodMatchesKind) {
  for (const auto kind : browser::all_probe_kinds()) {
    EXPECT_EQ(make_method(kind)->info().kind, kind);
  }
}

TEST(MethodInfoTest, Table1Metadata) {
  const auto ws = make_method(ProbeKind::kWebSocket)->info();
  EXPECT_EQ(ws.approach, "Socket-based");
  EXPECT_EQ(ws.availability, "Native");
  EXPECT_EQ(ws.same_origin_text(), "No");
  EXPECT_EQ(ws.metrics_text(), "RTT, Tput");

  const auto flash = make_method(ProbeKind::kFlashGet)->info();
  EXPECT_EQ(flash.same_origin_text(), "Yes*");
  EXPECT_EQ(flash.availability, "Plug-in");

  const auto xhr = make_method(ProbeKind::kXhrGet)->info();
  EXPECT_EQ(xhr.same_origin_text(), "Yes");

  const auto udp = make_method(ProbeKind::kJavaUdp)->info();
  EXPECT_TRUE(udp.measures_loss);
  EXPECT_EQ(udp.metrics_text(), "RTT, Tput, Loss");
}

// Parameterized end-to-end method execution across a Windows and an
// Ubuntu browser.
struct MethodCase {
  ProbeKind kind;
  BrowserId browser;
  OsId os;
};

class MethodRun : public ::testing::TestWithParam<MethodCase> {};

TEST_P(MethodRun, TwoPhaseProtocolCompletes) {
  const auto param = GetParam();
  core::Testbed::Config cfg;
  cfg.seed = 11 + static_cast<std::uint64_t>(param.kind);
  cfg.client_os = param.os;
  core::Testbed testbed{cfg};
  auto browser = testbed.launch_browser(
      browser::make_profile(param.browser, param.os), 0);

  MethodContext ctx;
  ctx.browser = browser.get();
  ctx.http_server = testbed.http_endpoint();
  ctx.tcp_echo = testbed.tcp_echo_endpoint();
  ctx.udp_echo = testbed.udp_echo_endpoint();
  ctx.ws_server = testbed.ws_endpoint();

  auto method = make_method(param.kind);
  std::optional<MethodRunResult> result;
  method->run(ctx, [&](MethodRunResult r) { result = std::move(r); });
  testbed.sim().scheduler().run();

  ASSERT_TRUE(result.has_value()) << "method never completed";
  ASSERT_TRUE(result->ok) << result->error;

  // Both measurements have sane, ordered timestamps.
  for (const auto* m : {&result->m1, &result->m2}) {
    EXPECT_LT(m->true_send, m->true_recv);
    // The browser-level RTT covers the 50 ms netem delay (quantization can
    // shave up to one 15.6 ms granule).
    EXPECT_GT(m->browser_rtt().ms_f(), 30.0);
    EXPECT_LT(m->browser_rtt().ms_f(), 400.0);
  }
  // Second measurement strictly after the first.
  EXPECT_GE(result->m2.true_send, result->m1.true_recv);
}

std::string case_name(const ::testing::TestParamInfo<MethodCase>& info) {
  std::string n = probe_kind_name(info.param.kind);
  for (auto& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n + "_" + browser::browser_name(info.param.browser) + "_" +
         browser::os_initial(info.param.os);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MethodRun,
    ::testing::Values(
        MethodCase{ProbeKind::kXhrGet, BrowserId::kChrome, OsId::kUbuntu},
        MethodCase{ProbeKind::kXhrGet, BrowserId::kIe, OsId::kWindows7},
        MethodCase{ProbeKind::kXhrPost, BrowserId::kFirefox, OsId::kWindows7},
        MethodCase{ProbeKind::kDom, BrowserId::kOpera, OsId::kUbuntu},
        MethodCase{ProbeKind::kWebSocket, BrowserId::kChrome, OsId::kWindows7},
        MethodCase{ProbeKind::kFlashGet, BrowserId::kOpera, OsId::kWindows7},
        MethodCase{ProbeKind::kFlashPost, BrowserId::kSafari, OsId::kWindows7},
        MethodCase{ProbeKind::kFlashSocket, BrowserId::kChrome, OsId::kUbuntu},
        MethodCase{ProbeKind::kJavaGet, BrowserId::kFirefox, OsId::kWindows7},
        MethodCase{ProbeKind::kJavaPost, BrowserId::kChrome, OsId::kUbuntu},
        MethodCase{ProbeKind::kJavaSocket, BrowserId::kSafari, OsId::kWindows7},
        MethodCase{ProbeKind::kJavaUdp, BrowserId::kFirefox, OsId::kUbuntu}),
    case_name);

TEST(MethodFailure, WebSocketOnIeFailsGracefully) {
  core::Testbed::Config cfg;
  cfg.client_os = OsId::kWindows7;
  core::Testbed testbed{cfg};
  auto ie = testbed.launch_browser(
      browser::make_profile(BrowserId::kIe, OsId::kWindows7), 0);
  MethodContext ctx;
  ctx.browser = ie.get();
  ctx.ws_server = testbed.ws_endpoint();
  auto method = make_method(ProbeKind::kWebSocket);
  std::optional<MethodRunResult> result;
  method->run(ctx, [&](MethodRunResult r) { result = std::move(r); });
  testbed.sim().scheduler().run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("Table 2"), std::string::npos);
}

TEST(MethodBehavior, SocketMethodExcludesConnectionSetup) {
  // For the Java socket method, the capture between the two probe
  // timestamps must contain no SYN (the connection was pre-established in
  // the preparation phase).
  core::Testbed::Config cfg;
  cfg.client_os = OsId::kUbuntu;
  core::Testbed testbed{cfg};
  auto chrome = testbed.launch_browser(
      browser::make_profile(BrowserId::kChrome, OsId::kUbuntu), 0);
  MethodContext ctx;
  ctx.browser = chrome.get();
  ctx.http_server = testbed.http_endpoint();
  ctx.tcp_echo = testbed.tcp_echo_endpoint();
  auto method = make_method(ProbeKind::kJavaSocket);
  std::optional<MethodRunResult> result;
  method->run(ctx, [&](MethodRunResult r) { result = std::move(r); });
  testbed.sim().scheduler().run();
  ASSERT_TRUE(result && result->ok);
  const auto& cap = testbed.client().capture();
  for (std::size_t i = 0; i < cap.size(); ++i) {
    if (cap.packet(i).flags.syn && cap.packet(i).dst.port == 9000) {
      EXPECT_LT(cap.true_time(i), result->m1.true_send);
    }
  }
}

}  // namespace
}  // namespace bnm::methods
