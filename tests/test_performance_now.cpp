// performance.now(): the High Resolution Time variant of the JS methods.
#include <gtest/gtest.h>

#include <cmath>

#include "browser/clock_set.h"
#include "core/experiment.h"

namespace bnm::browser {
namespace {

TEST(PerformanceNowClock, MicrosecondQuantization) {
  PerformanceNowClock clock;
  const auto t = sim::TimePoint::from_ns(1'234'567'890);
  const auto r = clock.read(t);
  EXPECT_LE(r, t);
  EXPECT_LT(t - r, sim::Duration::micros(1));
  EXPECT_EQ(r.ns_since_epoch() % 1000, 0);
  EXPECT_EQ(clock.name(), "performance.now");
  EXPECT_EQ(clock.resolution(), sim::Duration::micros(1));
}

TEST(PerformanceNowClock, InClockSet) {
  ClockSet cs{OsId::kWindows7, sim::Rng{1}};
  EXPECT_EQ(cs.get(ClockKind::kJsPerformanceNow).name(), "performance.now");
}

TEST(PerformanceNow, SupportMatchesEra) {
  EXPECT_TRUE(make_profile(BrowserId::kChrome, OsId::kWindows7)
                  .supports_performance_now);
  EXPECT_TRUE(make_profile(BrowserId::kFirefox, OsId::kUbuntu)
                  .supports_performance_now);
  EXPECT_FALSE(
      make_profile(BrowserId::kIe, OsId::kWindows7).supports_performance_now);
  EXPECT_FALSE(make_profile(BrowserId::kSafari, OsId::kWindows7)
                   .supports_performance_now);
  EXPECT_FALSE(make_profile(BrowserId::kOpera, OsId::kUbuntu)
                   .supports_performance_now);
}

TEST(PerformanceNow, ClockForUpgradesOnlySupportedJsKinds) {
  const auto chrome = make_profile(BrowserId::kChrome, OsId::kWindows7);
  EXPECT_EQ(chrome.clock_for(ProbeKind::kXhrGet, false, true),
            ClockKind::kJsPerformanceNow);
  EXPECT_EQ(chrome.clock_for(ProbeKind::kWebSocket, false, true),
            ClockKind::kJsPerformanceNow);
  // Plugin technologies keep their own clocks.
  EXPECT_EQ(chrome.clock_for(ProbeKind::kFlashGet, false, true),
            ClockKind::kFlashDate);
  EXPECT_EQ(chrome.clock_for(ProbeKind::kJavaSocket, false, true),
            ClockKind::kJavaDate);
  // Unsupported browser falls back to Date.getTime().
  const auto ie = make_profile(BrowserId::kIe, OsId::kWindows7);
  EXPECT_EQ(ie.clock_for(ProbeKind::kXhrGet, false, true), ClockKind::kJsDate);
}

TEST(PerformanceNow, RemovesMillisecondQuantizationFromWebSocket) {
  core::ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kWebSocket;
  cfg.browser = BrowserId::kChrome;
  cfg.os = OsId::kUbuntu;
  cfg.runs = 20;

  const auto date_series = core::run_experiment(cfg);
  cfg.js_use_performance_now = true;
  const auto perf_series = core::run_experiment(cfg);

  // Date.getTime(): browser RTTs are whole milliseconds.
  for (const auto& s : date_series.samples) {
    EXPECT_NEAR(s.browser_rtt2_ms, std::round(s.browser_rtt2_ms), 1e-9);
  }
  // performance.now(): sub-millisecond readings appear.
  bool fractional = false;
  for (const auto& s : perf_series.samples) {
    if (std::fabs(s.browser_rtt2_ms - std::round(s.browser_rtt2_ms)) > 1e-3) {
      fractional = true;
    }
  }
  EXPECT_TRUE(fractional);

  // And the overhead spread tightens: no +-1 ms quantization noise.
  EXPECT_LT(perf_series.d2_box().iqr(), date_series.d2_box().iqr());
}

}  // namespace
}  // namespace bnm::browser
