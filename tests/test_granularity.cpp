#include <gtest/gtest.h>

#include "browser/clock_set.h"
#include "core/granularity.h"

namespace bnm::core {
namespace {

using browser::NanoClock;
using browser::OsId;
using browser::QuantizedClock;

QuantizedClock fixed_clock(double granule_ms, std::uint64_t seed = 1) {
  QuantizedClock::Config cfg;
  cfg.granularities = {sim::Duration::from_millis_f(granule_ms)};
  return QuantizedClock{cfg, sim::Rng{seed}};
}

TEST(GranularityProber, MeasuresFixed1msClock) {
  auto clock = fixed_clock(1.0);
  const auto probe = GranularityProber::probe_once(
      clock, sim::TimePoint::epoch() + sim::Duration::seconds(1));
  EXPECT_DOUBLE_EQ(probe.measured.ms_f(), 1.0);
  EXPECT_GT(probe.api_calls, 1u);
}

TEST(GranularityProber, Measures15msClock) {
  auto clock = fixed_clock(15.625);
  const auto probe = GranularityProber::probe_once(
      clock, sim::TimePoint::epoch() + sim::Duration::seconds(2));
  EXPECT_DOUBLE_EQ(probe.measured.ms_f(), 15.625);
  // Busy-wait iterations: ~15.6 ms / 400 ns per call ~ 39000.
  EXPECT_GT(probe.api_calls, 10000u);
}

TEST(GranularityProber, NanoClockResolvesInOneStep) {
  NanoClock clock;
  const auto probe =
      GranularityProber::probe_once(clock, sim::TimePoint::epoch());
  EXPECT_EQ(probe.api_calls, 2u);
  EXPECT_EQ(probe.measured, clock.call_cost());
}

TEST(GranularityProber, SeriesSpacingAndCount) {
  auto clock = fixed_clock(1.0);
  const auto series = GranularityProber::probe_series(
      clock, sim::TimePoint::epoch(), sim::Duration::seconds(10), 12);
  ASSERT_EQ(series.size(), 12u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ(series[i].at - series[i - 1].at, sim::Duration::seconds(10));
  }
}

TEST(GranularityProber, WindowsClockShowsBothLevels) {
  browser::ClockSet clocks{OsId::kWindows7, sim::Rng{5}};
  const auto series = GranularityProber::probe_series(
      clocks.java_date(), sim::TimePoint::epoch(), sim::Duration::seconds(10),
      240);  // 40 minutes
  const auto levels = GranularityProber::distinct_levels(series);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_NEAR(levels[0].ms_f(), 1.0, 0.01);
  EXPECT_NEAR(levels[1].ms_f(), 15.625, 0.01);
}

TEST(GranularityProber, UbuntuClockSingleLevel) {
  browser::ClockSet clocks{OsId::kUbuntu, sim::Rng{6}};
  const auto series = GranularityProber::probe_series(
      clocks.java_date(), sim::TimePoint::epoch(), sim::Duration::seconds(10),
      120);
  const auto levels = GranularityProber::distinct_levels(series);
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_NEAR(levels[0].ms_f(), 1.0, 0.01);
}

TEST(GranularityProber, DistinctLevelsClustersNearbyValues) {
  std::vector<GranularityProbe> series;
  for (double v : {1.0, 1.02, 0.99, 15.6, 15.65, 15.62}) {
    GranularityProbe p;
    p.measured = sim::Duration::from_millis_f(v);
    series.push_back(p);
  }
  const auto levels = GranularityProber::distinct_levels(series);
  EXPECT_EQ(levels.size(), 2u);
}

}  // namespace
}  // namespace bnm::core
