// Fault-injection primitives: LossProcess (i.i.d. and Gilbert-Elliott),
// the FaultInjector stage (scripted drops, blackholes, flaps, corruption,
// duplication, counters, bounded event trace), netem loss/duplication
// parity, and host-side checksum drops of corrupted packets.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "net/fault.h"
#include "net/host.h"
#include "net/netem.h"
#include "net/payload.h"
#include "sim/simulation.h"

namespace bnm::net {
namespace {

class Collector : public PacketSink {
 public:
  void handle_packet(Packet p) override { packets.push_back(std::move(p)); }
  std::vector<Packet> packets;
};

Packet make_data_packet(std::size_t payload_bytes = 16) {
  Packet p;
  p.protocol = Protocol::kTcp;
  p.flags.ack = true;
  p.flags.psh = true;
  p.payload.assign(payload_bytes, 0xAB);
  return p;
}

Packet make_pure_ack() {
  Packet p;
  p.protocol = Protocol::kTcp;
  p.flags.ack = true;
  return p;
}

// ----------------------------------------------------------- LossProcess

TEST(LossProcess, DisabledByDefaultAndAtZeroProbability) {
  EXPECT_FALSE(LossProcess{}.enabled());
  EXPECT_FALSE(LossProcess::iid(0.0).enabled());
  EXPECT_TRUE(LossProcess::iid(0.5).enabled());
  EXPECT_FALSE(LossProcess::iid(0.5).is_bursty());
}

TEST(LossProcess, IidCertainLossDropsEverything) {
  sim::Simulation sim{1};
  auto rng = sim.rng_for("loss");
  auto lp = LossProcess::iid(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(lp.should_drop(rng));
}

TEST(LossProcess, GilbertElliottStationaryRateFormula) {
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.5;
  // pi_bad = p_g2b / (p_g2b + p_b2g); loss_good = 0, loss_bad = 1.
  EXPECT_NEAR(ge.stationary_loss_rate(), 0.05 / 0.55, 1e-12);
}

TEST(LossProcess, GilbertElliottEmpiricalRateMatchesStationary) {
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.4;
  sim::Simulation sim{2};
  auto rng = sim.rng_for("ge");
  auto lp = LossProcess::bursty(ge);
  const int n = 200000;
  int drops = 0;
  for (int i = 0; i < n; ++i) {
    if (lp.should_drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, ge.stationary_loss_rate(),
              0.01);
}

TEST(LossProcess, GilbertElliottLossComesInBursts) {
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.3;  // mean bad-state sojourn ~ 1/0.3 = 3.3 packets
  sim::Simulation sim{3};
  auto rng = sim.rng_for("ge");
  auto lp = LossProcess::bursty(ge);
  int bursts = 0, drops = 0;
  bool in_burst = false;
  for (int i = 0; i < 100000; ++i) {
    const bool drop = lp.should_drop(rng);
    if (drop) {
      ++drops;
      if (!in_burst) ++bursts;
    }
    in_burst = drop;
  }
  ASSERT_GT(bursts, 0);
  const double mean_burst = static_cast<double>(drops) / bursts;
  EXPECT_GT(mean_burst, 2.0);  // far above the i.i.d. value of ~1
  EXPECT_LT(mean_burst, 5.0);
}

// --------------------------------------------------------- FaultInjector

TEST(FaultInjector, EmptyPlanIsInactivePassThrough) {
  sim::Simulation sim{1};
  FaultInjector fi{sim, FaultPlan{}};
  Collector out;
  fi.set_output(&out);

  EXPECT_FALSE(fi.active());
  for (int i = 0; i < 5; ++i) fi.handle_packet(make_data_packet());
  EXPECT_EQ(out.packets.size(), 5u);
  EXPECT_EQ(fi.counters().seen, 5u);
  EXPECT_EQ(fi.counters().forwarded, 5u);
  EXPECT_EQ(fi.counters().dropped(), 0u);
  EXPECT_TRUE(fi.events().empty());
}

TEST(FaultInjector, ScriptedDropHitsExactlyTheNthDataSegment) {
  sim::Simulation sim{1};
  FaultPlan plan;
  plan.drop_nth_data_segment(2).drop_nth_data_segment(4);
  FaultInjector fi{sim, plan};
  Collector out;
  fi.set_output(&out);

  // data(1), ack, data(2: dropped), data(3), data(4: dropped)
  fi.handle_packet(make_data_packet());
  fi.handle_packet(make_pure_ack());  // not a data segment: not counted
  fi.handle_packet(make_data_packet());
  fi.handle_packet(make_data_packet());
  fi.handle_packet(make_data_packet());

  EXPECT_EQ(out.packets.size(), 3u);
  EXPECT_EQ(fi.counters().scripted_drops, 2u);
  EXPECT_EQ(fi.counters().forwarded, 3u);
  ASSERT_EQ(fi.events().size(), 2u);
  EXPECT_EQ(fi.events()[0].kind, FaultKind::kScriptedDrop);
}

TEST(FaultInjector, BlackholeWindowIsHalfOpen) {
  sim::Simulation sim{1};
  const auto t0 = sim::TimePoint::epoch();
  FaultPlan plan;
  plan.blackhole(t0 + sim::Duration::millis(100),
                 t0 + sim::Duration::millis(200));
  FaultInjector fi{sim, plan};
  Collector out;
  fi.set_output(&out);

  auto send_at = [&](int ms) {
    sim.scheduler().schedule_at(t0 + sim::Duration::millis(ms),
                                [&] { fi.handle_packet(make_data_packet()); });
  };
  send_at(50);    // before: forwarded
  send_at(100);   // boundary start: dropped (window is [begin, end))
  send_at(150);   // inside: dropped
  send_at(200);   // boundary end: forwarded
  send_at(250);   // after: forwarded
  sim.scheduler().run();

  EXPECT_EQ(out.packets.size(), 3u);
  EXPECT_EQ(fi.counters().blackholed, 2u);
}

TEST(FaultInjector, FlapBuilderMakesPeriodicDownWindows) {
  sim::Simulation sim{1};
  const auto t0 = sim::TimePoint::epoch();
  FaultPlan plan;
  plan.flap(t0 + sim::Duration::millis(10), sim::Duration::millis(5),
            sim::Duration::millis(20), 3);
  ASSERT_EQ(plan.flaps.size(), 3u);
  EXPECT_EQ(plan.flaps[1].begin, t0 + sim::Duration::millis(30));
  EXPECT_EQ(plan.flaps[1].end, t0 + sim::Duration::millis(35));

  FaultInjector fi{sim, plan};
  Collector out;
  fi.set_output(&out);
  sim.scheduler().schedule_at(t0 + sim::Duration::millis(31),
                              [&] { fi.handle_packet(make_data_packet()); });
  sim.scheduler().schedule_at(t0 + sim::Duration::millis(40),
                              [&] { fi.handle_packet(make_data_packet()); });
  sim.scheduler().run();

  EXPECT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(fi.counters().flap_drops, 1u);
}

TEST(FaultInjector, CorruptionMarksThePacketButForwardsIt) {
  sim::Simulation sim{1};
  FaultPlan plan;
  plan.corrupt_probability = 1.0;
  FaultInjector fi{sim, plan};
  Collector out;
  fi.set_output(&out);

  fi.handle_packet(make_data_packet());
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_TRUE(out.packets[0].corrupted);
  EXPECT_EQ(fi.counters().corrupted, 1u);
  EXPECT_EQ(fi.counters().forwarded, 1u);
  EXPECT_EQ(fi.counters().dropped(), 0u);
}

TEST(FaultInjector, DuplicationEmitsCopyThenOriginal) {
  sim::Simulation sim{1};
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  FaultInjector fi{sim, plan};
  Collector out;
  fi.set_output(&out);

  Packet p = make_data_packet();
  p.id = 77;
  fi.handle_packet(p);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(out.packets[0].id, 77u);
  EXPECT_EQ(out.packets[1].id, 77u);
  EXPECT_EQ(fi.counters().duplicated, 1u);
  EXPECT_EQ(fi.counters().forwarded, 2u);
}

TEST(FaultInjector, EventTraceIsBoundedButCountersAreNot) {
  sim::Simulation sim{1};
  FaultPlan plan;
  plan.loss_probability = 1.0;
  plan.max_events = 4;
  FaultInjector fi{sim, plan};
  Collector out;
  fi.set_output(&out);

  for (int i = 0; i < 10; ++i) fi.handle_packet(make_data_packet());
  EXPECT_EQ(fi.events().size(), 4u);
  EXPECT_EQ(fi.counters().iid_losses, 10u);
  EXPECT_TRUE(out.packets.empty());
}

// -------------------------------------------------- netem parity (satellite)

TEST(NetemFaults, CertainLossDropsBeforeDelay) {
  sim::Simulation sim{1};
  DelayEmulator::Config cfg;
  cfg.delay = sim::Duration::millis(1);
  cfg.loss_probability = 1.0;
  DelayEmulator netem{sim, cfg};
  Collector out;
  netem.set_output([&out](Packet p) { out.handle_packet(std::move(p)); });

  for (int i = 0; i < 7; ++i) netem.enqueue(make_data_packet());
  sim.scheduler().run();
  EXPECT_TRUE(out.packets.empty());
  EXPECT_EQ(netem.drops(), 7u);
}

TEST(NetemFaults, CertainDuplicationDoublesDelivery) {
  sim::Simulation sim{1};
  DelayEmulator::Config cfg;
  cfg.delay = sim::Duration::millis(1);
  cfg.duplicate_probability = 1.0;
  DelayEmulator netem{sim, cfg};
  Collector out;
  netem.set_output([&out](Packet p) { out.handle_packet(std::move(p)); });

  for (int i = 0; i < 3; ++i) netem.enqueue(make_data_packet());
  sim.scheduler().run();
  EXPECT_EQ(out.packets.size(), 6u);
  EXPECT_EQ(netem.duplicates(), 3u);
}

TEST(NetemFaults, DeterministicBurstyChainSticksInBadState) {
  // loss_good=0, p_g2b=1, p_b2g=0: the first packet passes (Good state),
  // the chain then enters Bad forever and everything else is dropped.
  sim::Simulation sim{1};
  DelayEmulator::Config cfg;
  cfg.delay = sim::Duration::millis(1);
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 1.0;
  ge.p_bad_to_good = 0.0;
  cfg.bursty_loss = ge;
  DelayEmulator netem{sim, cfg};
  Collector out;
  netem.set_output([&out](Packet p) { out.handle_packet(std::move(p)); });

  for (int i = 0; i < 5; ++i) netem.enqueue(make_data_packet());
  sim.scheduler().run();
  EXPECT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(netem.drops(), 4u);
}

// --------------------------------------------- receiver checksum semantics

TEST(ChecksumDrop, CorruptedPacketIsCapturedButNeverDemuxed) {
  sim::Simulation sim{5};
  Host::Config hc;
  hc.name = "rx";
  hc.ip = IpAddress{10, 0, 0, 9};
  FaultPlan plan;
  plan.name = "rx-ingress";
  plan.corrupt_probability = 1.0;
  hc.ingress_faults = plan;
  Host host{sim, hc};

  int received = 0;
  auto sock = host.udp_open(4000, [&](Endpoint, const Payload&) {
    ++received;
  });

  Packet p;
  p.protocol = Protocol::kUdp;
  p.src = Endpoint{IpAddress{10, 0, 0, 8}, 5000};
  p.dst = Endpoint{host.ip(), 4000};
  p.payload.assign(8, 0x42);
  static_cast<PacketSink&>(host).handle_packet(p);
  sim.scheduler().run();

  EXPECT_EQ(received, 0);
  EXPECT_EQ(host.checksum_drops(), 1u);
  // The capture tap sits before the checksum check, like a real NIC tap:
  // the corrupted frame is on record even though the stack discarded it.
  EXPECT_EQ(host.capture().size(), 1u);
  EXPECT_EQ(host.ingress_faults()->counters().corrupted, 1u);
}

}  // namespace
}  // namespace bnm::net
