// Checkpoint/resume contract: stable config hashing, exact series
// round-trips (including awkward doubles), golden file bytes, resume
// bit-identity, and graceful degradation on corrupt checkpoints. Plus the
// FaultPlan construction-time validation that protects the same campaigns.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "core/parallel_runner.h"
#include "net/fault.h"
#include "sim/simulation.h"

namespace bnm::core {
namespace {

/// Unique-ish temp path under the build tree; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static int counter = 0;
    path_ = "bnm_ckpt_test_" + tag + "_" + std::to_string(counter++) +
            ".json";
    std::remove(path_.c_str());
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ExperimentConfig demo_config() {
  ExperimentConfig cfg;
  cfg.browser = browser::BrowserId::kChrome;
  cfg.os = browser::OsId::kUbuntu;
  cfg.kind = methods::ProbeKind::kXhrGet;
  cfg.runs = 2;
  return cfg;
}

TEST(ConfigHash, StableAcrossCallsAndCopies) {
  const ExperimentConfig a = demo_config();
  ExperimentConfig b = a;
  EXPECT_EQ(cell_config_hash(a), cell_config_hash(b));
  EXPECT_EQ(cell_config_hash_hex(a), cell_config_hash_hex(b));
  EXPECT_EQ(cell_config_hash_hex(a).size(), 16u);
}

TEST(ConfigHash, SensitiveToEveryBehaviourKnob) {
  const ExperimentConfig base = demo_config();
  const std::uint64_t h0 = cell_config_hash(base);

  ExperimentConfig c = base;
  c.seed = 43;
  EXPECT_NE(cell_config_hash(c), h0);
  c = base;
  c.runs = 3;
  EXPECT_NE(cell_config_hash(c), h0);
  c = base;
  c.kind = methods::ProbeKind::kXhrPost;
  EXPECT_NE(cell_config_hash(c), h0);
  c = base;
  c.java_use_nanotime = true;
  EXPECT_NE(cell_config_hash(c), h0);
  c = base;
  c.testbed.server_delay = sim::Duration::millis(51);
  EXPECT_NE(cell_config_hash(c), h0);
  c = base;
  c.testbed.tcp.congestion_control = true;
  EXPECT_NE(cell_config_hash(c), h0);
  c = base;
  c.testbed.link_loss_probability = 0.01;
  EXPECT_NE(cell_config_hash(c), h0);

  // Fault plans are part of the hash: adding, then tweaking, then removing
  // one all change it.
  c = base;
  net::FaultPlan plan;
  plan.loss_probability = 0.1;
  c.testbed.faults_to_server = plan;
  const std::uint64_t with_faults = cell_config_hash(c);
  EXPECT_NE(with_faults, h0);
  c.testbed.faults_to_server->loss_probability = 0.2;
  EXPECT_NE(cell_config_hash(c), with_faults);
  c.testbed.faults_to_server->drop_nth_data_segment(3);
  const std::uint64_t with_drop = cell_config_hash(c);
  EXPECT_NE(with_drop, with_faults);
  c.testbed.faults_to_server.reset();
  EXPECT_EQ(cell_config_hash(c), h0);
}

TEST(SeriesJson, RoundTripsAwkwardDoublesExactly) {
  OverheadSeries s;
  s.case_label = "C (U)";
  s.method_name = "XHR GET";
  s.failures = 1;
  s.first_error = "sample deadline exceeded";
  s.accounting.timeouts = 1;
  s.accounting.http_retries = 7;
  OverheadSample a;
  a.d1_ms = 0.1;  // not exactly representable
  a.d2_ms = -0.0;  // sign of zero must survive
  a.browser_rtt1_ms = 101.30000000000001;
  a.browser_rtt2_ms = 1e-17;
  a.net_rtt1_ms = 12345678.000000001;
  a.net_rtt2_ms = -3.5;
  a.connections_opened1 = 1;
  s.samples.push_back(a);
  OverheadSample b;
  b.d1_ms = 3.0;  // integral-valued double: dumps as "3", reparses as int
  s.samples.push_back(b);

  const std::string dumped = series_to_json(s).dump();
  std::optional<obs::json::Value> parsed = obs::json::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  std::optional<OverheadSeries> back = series_from_json(*parsed);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->case_label, s.case_label);
  EXPECT_EQ(back->method_name, s.method_name);
  EXPECT_EQ(back->failures, s.failures);
  EXPECT_EQ(back->first_error, s.first_error);
  EXPECT_EQ(back->accounting.timeouts, 1);
  EXPECT_EQ(back->accounting.http_retries, 7u);
  ASSERT_EQ(back->samples.size(), 2u);
  // Bitwise round trip, including -0.0 (signbit, not just ==).
  EXPECT_EQ(back->samples[0].d1_ms, 0.1);
  EXPECT_TRUE(std::signbit(back->samples[0].d2_ms));
  EXPECT_EQ(back->samples[0].browser_rtt1_ms, 101.30000000000001);
  EXPECT_EQ(back->samples[0].browser_rtt2_ms, 1e-17);
  EXPECT_EQ(back->samples[0].net_rtt1_ms, 12345678.000000001);
  EXPECT_EQ(back->samples[0].net_rtt2_ms, -3.5);
  EXPECT_EQ(back->samples[0].connections_opened1, 1);
  EXPECT_EQ(back->samples[1].d1_ms, 3.0);

  // Re-serializing the parsed series yields the same bytes — the property
  // the resume bit-identity gate rests on.
  EXPECT_EQ(series_to_json(*back).dump(), dumped);
}

TEST(CheckpointFile, GoldenBytes) {
  TempFile tmp{"golden"};
  OverheadSeries s;
  s.case_label = "C (U)";
  s.method_name = "XHR GET";
  OverheadSample a;
  a.d1_ms = 1.5;
  a.net_rtt1_ms = 100.25;
  a.connections_opened1 = 1;
  s.samples.push_back(a);

  const ExperimentConfig cfg = demo_config();
  CheckpointWriter writer{tmp.path(), 3};
  writer.add(1, cfg, s);

  const std::string expected =
      std::string{"{\"format\":\"bnm-matrix-checkpoint\",\"version\":1,"} +
      "\"cells\":3,\"records\":[{\"cell\":1,\"config_hash\":\"" +
      cell_config_hash_hex(cfg) +
      "\",\"series\":{\"case_label\":\"C (U)\",\"method_name\":\"XHR GET\","
      "\"failures\":0,\"first_error\":\"\",\"accounting\":{\"timeouts\":0,"
      "\"transport_errors\":0,\"degraded\":0,\"http_retries\":0,"
      "\"http_timeouts\":0},\"samples\":[[1.5,0,0,0,100.25,0,1,0]]}}]}\n";
  EXPECT_EQ(slurp(tmp.path()), expected);

  // And the reader accepts its own golden bytes.
  std::optional<CheckpointReader> reader = CheckpointReader::load(tmp.path());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->total_cells(), 3u);
  EXPECT_EQ(reader->records(), 1u);
  const OverheadSeries* stored = reader->lookup(1, cfg);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->samples.size(), 1u);
  EXPECT_EQ(stored->samples[0].d1_ms, 1.5);
}

TEST(CheckpointFile, ResumeIsBitIdenticalToCleanRun) {
  auto cells = std::vector<ExperimentConfig>{};
  for (int i = 0; i < 4; ++i) {
    ExperimentConfig cfg = demo_config();
    cfg.seed = 42 + static_cast<std::uint64_t>(i);
    cells.push_back(cfg);
  }

  // Clean run (checkpointing on, as the chaos gate runs it).
  TempFile clean_ck{"clean"};
  MatrixOptions clean_opts;
  clean_opts.jobs = 2;
  clean_opts.checkpoint.path = clean_ck.path();
  const MatrixResult clean = run_matrix_checked(cells, clean_opts);
  ASSERT_TRUE(clean.ok());

  // Interrupted run: only cells 0 and 2 made it into the checkpoint.
  TempFile partial_ck{"partial"};
  {
    CheckpointWriter writer{partial_ck.path(), cells.size()};
    writer.add(0, cells[0], clean.series[0]);
    writer.add(2, cells[2], clean.series[2]);
  }

  // Resume: 0 and 2 restored, 1 and 3 executed fresh.
  MatrixOptions resume_opts;
  resume_opts.jobs = 2;
  resume_opts.checkpoint.path = partial_ck.path();
  resume_opts.checkpoint.resume = true;
  const MatrixResult resumed = run_matrix_checked(cells, resume_opts);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.cells_resumed, 2u);
  EXPECT_EQ(resumed.cells_run, 2u);

  // The canonical report — what downstream analysis consumes — is byte-
  // identical between the uninterrupted and the killed-and-resumed run.
  EXPECT_EQ(matrix_report_json(cells, resumed.series),
            matrix_report_json(cells, clean.series));

  // The rewritten checkpoint also carries all four cells now.
  std::optional<CheckpointReader> reader =
      CheckpointReader::load(partial_ck.path());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->records(), 4u);
}

TEST(CheckpointFile, HashMismatchRerunsTheCell) {
  auto cells = std::vector<ExperimentConfig>{demo_config()};
  const OverheadSeries real = run_experiment(cells[0]);

  TempFile ck{"mismatch"};
  {
    // Store the record under a *different* config (other seed): the stored
    // hash will not match, so resume must re-run the cell.
    ExperimentConfig other = cells[0];
    other.seed = 777;
    CheckpointWriter writer{ck.path(), 1};
    OverheadSeries bogus = real;
    bogus.case_label = "STALE";
    writer.add(0, other, bogus);
  }

  MatrixOptions options;
  options.jobs = 1;
  options.checkpoint.path = ck.path();
  options.checkpoint.resume = true;
  const MatrixResult result = run_matrix_checked(cells, options);
  EXPECT_EQ(result.cells_resumed, 0u);
  EXPECT_EQ(result.cells_run, 1u);
  EXPECT_EQ(result.series[0].case_label, real.case_label);  // not "STALE"
}

TEST(CheckpointFile, CorruptOrMissingCheckpointDegradesToFreshRun) {
  std::string error;
  EXPECT_FALSE(
      CheckpointReader::load("definitely_missing_ckpt.json", &error));
  EXPECT_FALSE(error.empty());

  TempFile ck{"corrupt"};
  {
    std::ofstream out{ck.path(), std::ios::binary};
    out << "{\"format\":\"bnm-matrix-checkpoint\",\"version\":1,\"cel";  // torn
  }
  error.clear();
  EXPECT_FALSE(CheckpointReader::load(ck.path(), &error));
  EXPECT_FALSE(error.empty());

  // The engine shrugs and runs everything.
  auto cells = std::vector<ExperimentConfig>{demo_config()};
  MatrixOptions options;
  options.jobs = 1;
  options.checkpoint.path = ck.path();
  options.checkpoint.resume = true;
  const MatrixResult result = run_matrix_checked(cells, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.cells_resumed, 0u);
  EXPECT_EQ(result.cells_run, 1u);

  // A wrong-format file (valid JSON, not a checkpoint) is rejected too.
  {
    std::ofstream out{ck.path(), std::ios::binary};
    out << "{\"format\":\"something-else\",\"version\":1,\"cells\":0,"
           "\"records\":[]}\n";
  }
  error.clear();
  EXPECT_FALSE(CheckpointReader::load(ck.path(), &error));
  EXPECT_NE(error.find("format"), std::string::npos);
}

TEST(FaultPlanValidation, RejectsIllFormedPlansOnConstruction) {
  sim::Simulation sim{1};

  net::FaultPlan bad_prob;
  bad_prob.name = "bad-prob";
  bad_prob.loss_probability = 1.5;
  EXPECT_THROW(
      { net::FaultInjector injector(sim, bad_prob); },
      std::invalid_argument);
  try {
    net::FaultInjector injector{sim, bad_prob};
  } catch (const std::invalid_argument& e) {
    // The error names the plan and the offending knob.
    EXPECT_NE(std::string{e.what()}.find("bad-prob"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("loss_probability"),
              std::string::npos);
  }

  net::FaultPlan bad_ge;
  bad_ge.bursty_loss = net::GilbertElliottConfig{};
  bad_ge.bursty_loss->p_good_to_bad = -0.25;
  EXPECT_THROW(
      { net::FaultInjector injector(sim, bad_ge); },
      std::invalid_argument);

  net::FaultPlan bad_window;
  bad_window.blackhole(sim::TimePoint::epoch() + sim::Duration::seconds(5),
                       sim::TimePoint::epoch() + sim::Duration::seconds(2));
  EXPECT_THROW(
      { net::FaultInjector injector(sim, bad_window); },
      std::invalid_argument);

  net::FaultPlan bad_ordinal;
  bad_ordinal.drop_data_segments.push_back(0);
  EXPECT_THROW(
      { net::FaultInjector injector(sim, bad_ordinal); },
      std::invalid_argument);

  // A well-formed plan still constructs fine.
  net::FaultPlan good;
  good.loss_probability = 0.5;
  good.blackhole(sim::TimePoint::epoch(),
                 sim::TimePoint::epoch() + sim::Duration::seconds(1));
  good.drop_nth_data_segment(1);
  EXPECT_NO_THROW({ net::FaultInjector injector(sim, good); });
}

}  // namespace
}  // namespace bnm::core
