// Fast retransmit and optional congestion control (slow start + AIMD).
#include <gtest/gtest.h>

#include "net_fixture.h"

namespace bnm::net {
namespace {

using test::TwoHostFixture;

class CongestionTest : public TwoHostFixture {
 protected:
  void listen_sink(Port port = 9000) {
    server->tcp_listen(port, [this](std::shared_ptr<TcpConnection> conn) {
      accepted.push_back(conn);
      TcpCallbacks cbs;
      cbs.on_data = [this](const Payload& d) {
        received += d.size();
      };
      conn->set_callbacks(std::move(cbs));
    });
  }

  /// Client with congestion control enabled.
  std::shared_ptr<TcpConnection> connect_cc(Endpoint to, TcpCallbacks cbs) {
    // Reconfigure the client host's TCP defaults.
    auto conn = client->tcp_connect(to, std::move(cbs));
    return conn;
  }

  std::vector<std::shared_ptr<TcpConnection>> accepted;
  std::size_t received = 0;
};

TEST_F(CongestionTest, DefaultConfigHasCongestionControlOff) {
  TcpConfig cfg;
  EXPECT_FALSE(cfg.congestion_control);
  EXPECT_EQ(cfg.dupack_threshold, 3u);
  EXPECT_EQ(cfg.initial_cwnd_segments, 10u);
}

TEST_F(CongestionTest, EffectiveWindowIsFixedWithoutCc) {
  listen_sink();
  auto conn = client->tcp_connect(server_ep(9000), {});
  run_all();
  EXPECT_EQ(conn->effective_window(), TcpConfig{}.send_window);
}

class CcHostFixture : public TwoHostFixture {
 protected:
  void SetUp() override {
    build();
    // Rebuild the client with congestion control on.
    Host::Config cc;
    cc.name = "cc-client";
    cc.ip = IpAddress{10, 0, 0, 1};
    cc.tcp.congestion_control = true;
    client = std::make_unique<Host>(*sim, cc);
    client->attach_link(link1.get(), Link::Side::kA);

    server->tcp_listen(9000, [this](std::shared_ptr<TcpConnection> conn) {
      TcpCallbacks cbs;
      cbs.on_data = [this](const Payload& d) {
        received += d.size();
      };
      conn->set_callbacks(std::move(cbs));
    });
  }
  std::size_t received = 0;
};

TEST_F(CcHostFixture, InitialWindowIsTenSegments) {
  auto conn = client->tcp_connect(server_ep(9000), {});
  run_all();
  EXPECT_EQ(conn->effective_window(), 10u * 1460u);
}

TEST_F(CcHostFixture, SlowStartGrowsWindowPerAck) {
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_connect = [&] { conn->send(std::string(200 * 1460, 'x')); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_EQ(received, 200u * 1460u);
  // cwnd grew well past the initial 10 segments.
  EXPECT_GT(conn->cwnd_bytes(), 20.0 * 1460.0);
}

TEST_F(CcHostFixture, TransferTakesMultipleRoundTripsUnderSlowStart) {
  // 100 segments at IW10 need several cwnd doublings; with ~0.1 ms RTT
  // this is quick, so give the link a real delay via the server netem.
  // (Rebuild with 20 ms netem.)
  server_netem_ms = 20;
  build();
  Host::Config cc;
  cc.name = "cc-client2";
  cc.ip = IpAddress{10, 0, 0, 1};
  cc.tcp.congestion_control = true;
  client = std::make_unique<Host>(*sim, cc);
  client->attach_link(link1.get(), Link::Side::kA);
  std::size_t got = 0;
  server->tcp_listen(9000, [&](std::shared_ptr<TcpConnection> conn) {
    TcpCallbacks cbs;
    cbs.on_data = [&](const Payload& d) { got += d.size(); };
    conn->set_callbacks(std::move(cbs));
  });

  sim::TimePoint done;
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  const std::size_t total = 100 * 1460;
  cbs.on_connect = [&] { conn->send(std::string(total, 'y')); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  // Track when the last ACK lands by draining fully.
  run_all();
  done = sim->now();
  EXPECT_EQ(got, total);
  // IW10 -> 20 -> 40 -> 80 -> 160: at least 4 windows => >= 4 ack RTTs
  // (20 ms each) beyond the handshake.
  EXPECT_GT(done - sim::TimePoint::epoch(), sim::Duration::millis(80));
}

class FastRetransmitFixture : public TwoHostFixture {
 protected:
  void SetUp() override {
    build();
    // Lossy direction client -> switch so data segments drop.
    Link::Config lc;
    lc.loss_probability = 0.05;
    lc.name = "lossy1";
    lossy = std::make_unique<Link>(*sim, lc);
    Host::Config cc;
    cc.name = "fr-client";
    cc.ip = IpAddress{10, 0, 0, 1};
    client = std::make_unique<Host>(*sim, cc);
    fabric = std::make_unique<SwitchFabric>(*sim);
    client->attach_link(lossy.get(), Link::Side::kA);
    const auto p0 = fabric->add_port(lossy.get(), Link::Side::kB);
    const auto p1 = fabric->add_port(link2.get(), Link::Side::kA);
    fabric->learn(client->ip(), p0);
    fabric->learn(server->ip(), p1);

    server->tcp_listen(9000, [this](std::shared_ptr<TcpConnection> conn) {
      TcpCallbacks cbs;
      cbs.on_data = [this](const Payload& d) {
        received += d.size();
      };
      conn->set_callbacks(std::move(cbs));
    });
  }
  std::unique_ptr<Link> lossy;
  std::size_t received = 0;
};

TEST_F(FastRetransmitFixture, DupAcksTriggerFastRetransmit) {
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  const std::size_t total = 300 * 1460;
  cbs.on_connect = [&] { conn->send(std::string(total, 'z')); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_for(sim::Duration::seconds(120));
  EXPECT_EQ(received, total);
  // With 5% loss over 300 segments, fast retransmit fires well before
  // most RTOs would.
  EXPECT_GT(conn->fast_retransmissions(), 0u);
}

TEST_F(FastRetransmitFixture, RecoveryFasterThanRtoOnly) {
  // Same transfer with fast retransmit disabled (threshold impossible).
  Host::Config no_fr;
  no_fr.name = "nofr-client";
  no_fr.ip = IpAddress{10, 0, 0, 1};
  no_fr.tcp.dupack_threshold = 1000000;
  auto slow_client = std::make_unique<Host>(*sim, no_fr);
  // Swap attachment: detach by rebuilding the fabric port mapping.
  // (Simplest: run the fast-retransmit transfer first, then re-run the
  // whole fixture logic with the new client.)
  client = std::move(slow_client);
  client->attach_link(lossy.get(), Link::Side::kA);
  fabric->learn(client->ip(), 0);

  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  const std::size_t total = 100 * 1460;
  const sim::TimePoint t0 = sim->now();
  cbs.on_connect = [&] { conn->send(std::string(total, 'q')); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_for(sim::Duration::seconds(300));
  const auto rto_only_time = sim->now() - t0;
  EXPECT_EQ(received, total);
  EXPECT_EQ(conn->fast_retransmissions(), 0u);
  EXPECT_GT(conn->retransmissions(), 0u);
  // Sanity: it still completes, just via RTO (>= 200 ms stalls).
  EXPECT_GT(rto_only_time, sim::Duration::millis(200));
}

}  // namespace
}  // namespace bnm::net
