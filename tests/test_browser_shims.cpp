#include <gtest/gtest.h>

#include "browser/dom.h"
#include "browser/flash.h"
#include "browser/java_applet.h"
#include "browser/websocket_api.h"
#include "browser/xhr.h"
#include "core/testbed.h"

namespace bnm::browser {
namespace {

class ShimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Testbed::Config cfg;
    cfg.seed = 99;
    cfg.client_os = OsId::kWindows7;
    testbed = std::make_unique<core::Testbed>(cfg);
    browser = testbed->launch_browser(
        make_profile(BrowserId::kChrome, OsId::kWindows7), 0);
  }

  void run_all() { testbed->sim().scheduler().run(); }

  std::unique_ptr<core::Testbed> testbed;
  std::unique_ptr<Browser> browser;
};

TEST_F(ShimTest, ContainerPageLoadPoolsAConnection) {
  bool loaded = false;
  browser->load_container_page(ProbeKind::kXhrGet, [&] { loaded = true; });
  run_all();
  EXPECT_TRUE(loaded);
  EXPECT_TRUE(browser->container_loaded());
  EXPECT_EQ(browser->http().pooled_connections(testbed->http_endpoint()), 1u);
}

TEST_F(ShimTest, XhrLifecycleAndResponse) {
  XmlHttpRequest xhr{*browser};
  EXPECT_EQ(xhr.ready_state(), XmlHttpRequest::ReadyState::kUnsent);
  ASSERT_TRUE(xhr.open("GET", "/echo"));
  EXPECT_EQ(xhr.ready_state(), XmlHttpRequest::ReadyState::kOpened);
  bool done = false;
  xhr.set_onreadystatechange([&] {
    if (xhr.ready_state() == XmlHttpRequest::ReadyState::kDone) done = true;
  });
  ASSERT_TRUE(xhr.send());
  run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(xhr.status(), 200);
  EXPECT_EQ(xhr.response_text(), "pong");
}

TEST_F(ShimTest, XhrEnforcesSameOrigin) {
  XmlHttpRequest xhr{*browser};
  ASSERT_TRUE(xhr.open("GET", "http://10.0.0.99:80/echo"));
  std::string err;
  xhr.set_onerror([&](const std::string& e) { err = e; });
  EXPECT_FALSE(xhr.send());
  EXPECT_NE(err.find("same-origin"), std::string::npos);
}

TEST_F(ShimTest, XhrRejectsMalformedUrlAndBadState) {
  XmlHttpRequest xhr{*browser};
  EXPECT_FALSE(xhr.open("GET", "not a url"));
  std::string err;
  xhr.set_onerror([&](const std::string& e) { err = e; });
  EXPECT_FALSE(xhr.send());  // never opened
  EXPECT_EQ(err, "InvalidStateError");
}

TEST_F(ShimTest, XhrPostDeliversBody) {
  XmlHttpRequest xhr{*browser};
  ASSERT_TRUE(xhr.open("POST", "/sink"));
  std::string body;
  xhr.set_onreadystatechange([&] {
    if (xhr.ready_state() == XmlHttpRequest::ReadyState::kDone) {
      body = xhr.response_text();
    }
  });
  ASSERT_TRUE(xhr.send("abc"));
  run_all();
  EXPECT_EQ(body, "got 3");
}

TEST_F(ShimTest, DomLoaderFiresOnload) {
  DomElementLoader loader{*browser};
  int loads = 0;
  loader.set_onload([&] { ++loads; });
  ASSERT_TRUE(loader.load("/echo?r=1"));
  run_all();
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(loader.loads_completed(), 1);
}

TEST_F(ShimTest, DomLoaderErrorsOn404) {
  DomElementLoader loader{*browser};
  std::string err;
  loader.set_onerror([&](const std::string& e) { err = e; });
  ASSERT_TRUE(loader.load("/missing.png"));
  run_all();
  EXPECT_NE(err.find("404"), std::string::npos);
}

TEST_F(ShimTest, DomLoaderAllowsCrossOrigin) {
  DomElementLoader loader{*browser};
  bool loaded = false;
  loader.set_onload([&] { loaded = true; });
  // Absolute URL to the same server "bypasses" same-origin by design.
  ASSERT_TRUE(loader.load("http://10.0.0.2:80/echo"));
  run_all();
  EXPECT_TRUE(loaded);
}

TEST_F(ShimTest, FlashUrlLoaderCompletes) {
  FlashRuntime flash{*browser};
  FlashRuntime::URLLoader loader{flash};
  int status = 0;
  loader.set_on_complete([&](int s, const std::string&) { status = s; });
  ASSERT_TRUE(loader.load("GET", "/echo"));
  run_all();
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(flash.made_http_request());
}

TEST_F(ShimTest, FlashSocketFetchesPolicyThenConnects) {
  FlashRuntime flash{*browser};
  FlashRuntime::Socket sock{flash};
  bool connected = false;
  std::string echoed;
  sock.set_on_connect([&] {
    connected = true;
    sock.write("flashprobe");
  });
  sock.set_on_socket_data([&](const std::string& d) { echoed = d; });
  EXPECT_FALSE(flash.policy_loaded(testbed->tcp_echo_endpoint().ip));
  sock.connect(testbed->tcp_echo_endpoint());
  run_all();
  EXPECT_TRUE(connected);
  EXPECT_TRUE(flash.policy_loaded(testbed->tcp_echo_endpoint().ip));
  EXPECT_EQ(echoed, "flashprobe");
}

TEST_F(ShimTest, FlashPolicyCachedPerRuntime) {
  FlashRuntime flash{*browser};
  FlashRuntime::Socket s1{flash};
  s1.set_on_connect([&] {});
  s1.connect(testbed->tcp_echo_endpoint());
  run_all();
  // Second socket: no new policy fetch (count port-80 requests).
  const auto served_before = testbed->web_server().requests_served();
  FlashRuntime::Socket s2{flash};
  bool c2 = false;
  s2.set_on_connect([&] { c2 = true; });
  s2.connect(testbed->tcp_echo_endpoint());
  run_all();
  EXPECT_TRUE(c2);
  EXPECT_EQ(testbed->web_server().requests_served(), served_before);
}

TEST_F(ShimTest, JavaUrlConnectionCompletes) {
  JavaAppletRuntime java{*browser, {}};
  JavaAppletRuntime::UrlConnection url{java};
  int status = 0;
  url.set_on_complete([&](int s, const std::string&) { status = s; });
  ASSERT_TRUE(url.load("GET", "/echo"));
  run_all();
  EXPECT_EQ(status, 200);
}

TEST_F(ShimTest, JavaSocketEcho) {
  JavaAppletRuntime java{*browser, {}};
  JavaAppletRuntime::Socket sock{java};
  std::string echoed;
  sock.set_on_connect([&] { sock.write("javaprobe"); });
  sock.set_on_data([&](const std::string& d) { echoed = d; });
  sock.connect(testbed->tcp_echo_endpoint());
  run_all();
  EXPECT_EQ(echoed, "javaprobe");
}

TEST_F(ShimTest, JavaDatagramSocketEcho) {
  JavaAppletRuntime java{*browser, {}};
  JavaAppletRuntime::DatagramSocket sock{java};
  std::string echoed;
  sock.set_on_receive([&](net::Endpoint, const std::string& d) { echoed = d; });
  sock.send_to(testbed->udp_echo_endpoint(), "udpprobe");
  run_all();
  EXPECT_EQ(echoed, "udpprobe");
}

TEST_F(ShimTest, JavaTimingFunctionSelectable) {
  JavaAppletRuntime date_java{*browser, {.use_nanotime = false}};
  JavaAppletRuntime nano_java{*browser, {.use_nanotime = true}};
  EXPECT_EQ(date_java.timing().name(), "Date.getTime");
  EXPECT_EQ(nano_java.timing().name(), "System.nanoTime");
}

TEST_F(ShimTest, AppletviewerOverheadsAreTiny) {
  JavaAppletRuntime av{*browser, {.use_nanotime = false, .via_appletviewer = true}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(av.pre_send(ProbeKind::kJavaSocket, true),
              sim::Duration::from_millis_f(0.25));
    EXPECT_LT(av.recv_dispatch(ProbeKind::kJavaSocket, false),
              sim::Duration::from_millis_f(0.2));
  }
}

TEST_F(ShimTest, WebSocketApiEcho) {
  BrowserWebSocket ws{*browser, testbed->ws_endpoint(), "/ws"};
  std::string got;
  ws.set_onmessage([&](const std::string& m) { got = m; });
  ws.set_onopen([&] { ws.send("wsprobe"); });
  run_all();
  EXPECT_EQ(got, "wsprobe");
  EXPECT_TRUE(ws.open());
}

TEST_F(ShimTest, WebSocketApiUnsupportedBrowserErrors) {
  auto ie = testbed->launch_browser(make_profile(BrowserId::kIe, OsId::kWindows7), 1);
  BrowserWebSocket ws{*ie, testbed->ws_endpoint(), "/ws"};
  std::string err;
  ws.set_onerror([&](const std::string& e) { err = e; });
  run_all();
  EXPECT_NE(err.find("not supported"), std::string::npos);
  EXPECT_FALSE(ws.open());
}

TEST_F(ShimTest, SampleOverheadsClampPositive) {
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(browser->sample_pre_send(ProbeKind::kJavaGet, true),
              sim::Duration::micros(5));
    EXPECT_GE(browser->sample_recv_dispatch(ProbeKind::kWebSocket, false),
              sim::Duration::micros(5));
  }
}

TEST_F(ShimTest, SafariWarmNoiseOnlyOnJavaDatePath) {
  auto safari = testbed->launch_browser(
      make_profile(BrowserId::kSafari, OsId::kWindows7), 2);
  double max_noisy = 0, max_clean = 0;
  for (int i = 0; i < 300; ++i) {
    max_noisy = std::max(
        max_noisy, safari->sample_recv_dispatch(ProbeKind::kJavaSocket, false,
                                                /*java_date_path=*/true)
                       .ms_f());
    max_clean = std::max(
        max_clean, safari->sample_recv_dispatch(ProbeKind::kJavaSocket, false,
                                                /*java_date_path=*/false)
                       .ms_f());
  }
  EXPECT_GT(max_noisy, 6.0);   // plugin noise present
  EXPECT_LT(max_clean, 2.0);   // nanoTime path clean (Table 4)
}

TEST_F(ShimTest, SameOriginCheck) {
  EXPECT_TRUE(browser->same_origin(testbed->http_endpoint()));
  EXPECT_FALSE(browser->same_origin(testbed->tcp_echo_endpoint()));
}

}  // namespace
}  // namespace bnm::browser
