// Tests for the extension modules: cross traffic, loss/reordering
// measurement, the IPPM dedicated-host baseline, and mobile profiles.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/ippm.h"
#include "core/loss_experiment.h"
#include "core/testbed.h"

namespace bnm::core {
namespace {

using browser::BrowserId;
using browser::MobilePlatform;
using browser::OsId;

// --------------------------------------------------------- cross traffic

TEST(CrossTraffic, GeneratorApproximatesOfferedLoad) {
  Testbed::Config cfg;
  cfg.cross_traffic_mbps = 40.0;
  Testbed tb{cfg};
  tb.sim().scheduler().run_until(tb.sim().now() + sim::Duration::seconds(3));
  ASSERT_NE(tb.cross_traffic(), nullptr);
  const double mbps = tb.cross_traffic()->offered_bytes() * 8.0 / 3.0 / 1e6;
  EXPECT_NEAR(mbps, 40.0, 8.0);
}

TEST(CrossTraffic, StopHaltsEmission) {
  Testbed::Config cfg;
  cfg.cross_traffic_mbps = 40.0;
  Testbed tb{cfg};
  tb.sim().scheduler().run_until(tb.sim().now() + sim::Duration::millis(500));
  tb.cross_traffic()->stop();
  const auto sent = tb.cross_traffic()->packets_sent();
  tb.sim().scheduler().run_until(tb.sim().now() + sim::Duration::seconds(1));
  EXPECT_EQ(tb.cross_traffic()->packets_sent(), sent);
}

TEST(CrossTraffic, AbsentWhenNotConfigured) {
  Testbed::Config cfg;
  Testbed tb{cfg};
  EXPECT_EQ(tb.cross_traffic(), nullptr);
}

TEST(CrossTraffic, MeasurementStillCompletesUnderContention) {
  ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kWebSocket;
  cfg.browser = BrowserId::kChrome;
  cfg.os = OsId::kUbuntu;
  cfg.runs = 5;
  cfg.testbed.cross_traffic_mbps = 60.0;
  const auto series = run_experiment(cfg);
  EXPECT_EQ(series.samples.size(), 5u);
  EXPECT_EQ(series.failures, 0);
}

// ------------------------------------------------------- loss experiment

TEST(LossExperiment, LosslessNetworkLosesNothing) {
  LossReorderingExperiment::Config cfg;
  cfg.probes = 100;
  LossReorderingExperiment exp{cfg};
  const auto r = exp.run();
  EXPECT_EQ(r.browser_received, 100);
  EXPECT_EQ(r.net_received, 100);
  EXPECT_EQ(r.browser_reordered, 0);
  EXPECT_EQ(r.net_reordered, 0);
  EXPECT_DOUBLE_EQ(r.loss_rate_error(), 0.0);
}

TEST(LossExperiment, BrowserAndCaptureAgreeUnderLoss) {
  LossReorderingExperiment::Config cfg;
  cfg.probes = 300;
  cfg.testbed.link_loss_probability = 0.05;
  LossReorderingExperiment exp{cfg};
  const auto r = exp.run();
  EXPECT_GT(r.net_loss_rate(), 0.02);
  EXPECT_LT(r.net_loss_rate(), 0.25);
  // The paper's Section 2 claim: overheads do not bias loss measurement.
  EXPECT_LT(r.loss_rate_error(), 0.01);
}

TEST(LossExperiment, ReorderingCountedBothLevels) {
  LossReorderingExperiment::Config cfg;
  cfg.probes = 200;
  cfg.probe_interval = sim::Duration::millis(10);
  cfg.testbed.server_jitter = sim::Duration::millis(30);
  cfg.testbed.allow_reorder = true;
  LossReorderingExperiment exp{cfg};
  const auto r = exp.run();
  EXPECT_GT(r.net_reordered, 5);
  EXPECT_NEAR(r.browser_reordered, r.net_reordered, 4);
}

TEST(LossExperiment, Deterministic) {
  LossReorderingExperiment::Config cfg;
  cfg.probes = 150;
  cfg.testbed.link_loss_probability = 0.05;
  const auto a = LossReorderingExperiment{cfg}.run();
  const auto b = LossReorderingExperiment{cfg}.run();
  EXPECT_EQ(a.browser_received, b.browser_received);
  EXPECT_EQ(a.net_received, b.net_received);
}

// ------------------------------------------------------------------ ippm

TEST(Ippm, AllProbesAnsweredOnCleanNetwork) {
  PoissonRttStream::Config cfg;
  cfg.probes = 40;
  PoissonRttStream stream{cfg};
  const auto samples = stream.run();
  EXPECT_EQ(samples.size(), 40u);
}

TEST(Ippm, OverheadIsNearZero) {
  PoissonRttStream::Config cfg;
  cfg.probes = 40;
  PoissonRttStream stream{cfg};
  const auto samples = stream.run();
  for (const auto& s : samples) {
    // Dedicated host: only stack delay + capture jitter between the app
    // timestamps and the wire.
    EXPECT_LT(std::abs(s.overhead_ms()), 0.3);
    EXPECT_GT(s.rtt_ms, 50.0);
    EXPECT_LT(s.rtt_ms, 51.0);
  }
  EXPECT_GT(PoissonRttStream::min_rtt_ms(samples), 50.0);
  EXPECT_GE(PoissonRttStream::median_rtt_ms(samples),
            PoissonRttStream::min_rtt_ms(samples));
}

TEST(Ippm, LossyNetworkYieldsFewerSamples) {
  PoissonRttStream::Config cfg;
  cfg.probes = 100;
  cfg.testbed.link_loss_probability = 0.2;
  PoissonRttStream stream{cfg};
  const auto samples = stream.run();
  EXPECT_LT(samples.size(), 90u);
  EXPECT_GT(samples.size(), 30u);
}

// --------------------------------------------------------------- mobile

TEST(MobileProfiles, NoPluginsWebSocketOnly) {
  for (const auto p : {MobilePlatform::kIosSafari,
                       MobilePlatform::kAndroidChrome}) {
    const auto profile = browser::make_mobile_profile(p);
    EXPECT_FALSE(profile.supports_flash);
    EXPECT_FALSE(profile.supports_java);
    EXPECT_TRUE(profile.supports_websocket);
    EXPECT_FALSE(profile.label().empty());
    EXPECT_NE(profile.label(), profile.which.label());
  }
}

TEST(MobileProfiles, PluginMethodsFailGracefully) {
  ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kFlashGet;
  cfg.browser = BrowserId::kChrome;
  cfg.os = OsId::kUbuntu;
  cfg.runs = 2;
  cfg.custom_profile = browser::make_mobile_profile(MobilePlatform::kAndroidChrome);
  const auto series = run_experiment(cfg);
  EXPECT_TRUE(series.samples.empty());
  EXPECT_EQ(series.failures, 2);
}

TEST(MobileProfiles, WebSocketWorksAndIsLabelled) {
  ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kWebSocket;
  cfg.browser = BrowserId::kChrome;
  cfg.os = OsId::kUbuntu;
  cfg.runs = 8;
  cfg.custom_profile = browser::make_mobile_profile(MobilePlatform::kIosSafari);
  const auto series = run_experiment(cfg);
  EXPECT_EQ(series.samples.size(), 8u);
  EXPECT_EQ(series.case_label, "MobSaf");
  EXPECT_LT(std::abs(series.d2_box().median), 2.5);
}

TEST(MobileProfiles, HigherHttpOverheadThanDesktopSibling) {
  const auto mobile = browser::make_mobile_profile(MobilePlatform::kAndroidChrome);
  const auto desktop = browser::make_profile(BrowserId::kChrome, OsId::kUbuntu);
  const auto warm = [](const browser::BrowserProfile& p,
                       browser::ProbeKind k) {
    const auto m = p.overhead(k);
    return m.pre_send.median_ms() + m.recv_dispatch.median_ms();
  };
  EXPECT_GT(warm(mobile, browser::ProbeKind::kXhrGet),
            warm(desktop, browser::ProbeKind::kXhrGet) * 2);
}

}  // namespace
}  // namespace bnm::core
