#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "net/address.h"

namespace bnm::net {
namespace {

TEST(IpAddress, ParseAndFormatRoundtrip) {
  for (const char* s : {"0.0.0.0", "10.0.0.1", "192.168.255.254", "255.255.255.255"}) {
    EXPECT_EQ(IpAddress::parse(s).to_string(), s);
  }
}

TEST(IpAddress, OctetLayout) {
  const IpAddress a{10, 20, 30, 40};
  EXPECT_EQ(a.raw(), 0x0A141E28u);
  EXPECT_EQ(a.to_string(), "10.20.30.40");
}

TEST(IpAddress, ParseRejectsMalformed) {
  for (const char* s :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.4x"}) {
    EXPECT_THROW(IpAddress::parse(s), std::invalid_argument) << s;
  }
}

TEST(IpAddress, Ordering) {
  EXPECT_LT(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2));
  EXPECT_EQ(IpAddress(10, 0, 0, 1), IpAddress::parse("10.0.0.1"));
}

TEST(Endpoint, Format) {
  const Endpoint e{IpAddress{10, 0, 0, 2}, 8080};
  EXPECT_EQ(e.to_string(), "10.0.0.2:8080");
}

TEST(Endpoint, Equality) {
  const Endpoint a{IpAddress{1, 2, 3, 4}, 80};
  const Endpoint b{IpAddress{1, 2, 3, 4}, 81};
  EXPECT_NE(a, b);
  EXPECT_EQ(a, (Endpoint{IpAddress{1, 2, 3, 4}, 80}));
}

TEST(FourTuple, ReversedSwapsEnds) {
  const FourTuple t{{IpAddress{1, 1, 1, 1}, 1000}, {IpAddress{2, 2, 2, 2}, 80}};
  const FourTuple r = t.reversed();
  EXPECT_EQ(r.local, t.remote);
  EXPECT_EQ(r.remote, t.local);
  EXPECT_EQ(r.reversed(), t);
}

TEST(Hashing, EndpointsAndTuplesUsableAsKeys) {
  std::unordered_set<Endpoint> eps;
  std::unordered_set<FourTuple> tuples;
  for (std::uint8_t i = 0; i < 100; ++i) {
    const Endpoint e{IpAddress{10, 0, 0, i}, static_cast<Port>(1000 + i)};
    eps.insert(e);
    tuples.insert(FourTuple{e, {IpAddress{1, 1, 1, 1}, 80}});
  }
  EXPECT_EQ(eps.size(), 100u);
  EXPECT_EQ(tuples.size(), 100u);
}

}  // namespace
}  // namespace bnm::net
