// Connection-limit, queueing, and redirect behaviour of the HTTP client.
#include <gtest/gtest.h>

#include "http/client.h"
#include "http/server.h"
#include "net_fixture.h"

namespace bnm::http {
namespace {

using test::TwoHostFixture;

class HttpLimits : public TwoHostFixture {
 protected:
  void SetUp() override {
    build();
    WebServer::Config wc;
    wc.port = 80;
    wc.think_time = sim::Duration::millis(5);
    web = std::make_unique<WebServer>(*server, wc);
    http = std::make_unique<HttpClient>(*client);
  }

  HttpRequest get(const std::string& target) {
    HttpRequest r;
    r.method = "GET";
    r.target = target;
    return r;
  }

  std::unique_ptr<WebServer> web;
  std::unique_ptr<HttpClient> http;
};

TEST_F(HttpLimits, ParallelRequestsCappedAtSixConnections) {
  int done = 0;
  for (int i = 0; i < 12; ++i) {
    http->request(server_ep(80), get("/echo"),
                  [&](HttpResponse r, HttpClient::TransferInfo) {
                    EXPECT_EQ(r.status, 200);
                    ++done;
                  });
  }
  // Before anything completes: 6 in flight, 6 queued.
  EXPECT_EQ(http->live_connections(server_ep(80)), 6u);
  EXPECT_EQ(http->queued_requests(server_ep(80)), 6u);
  run_all();
  EXPECT_EQ(done, 12);
  EXPECT_EQ(http->connections_opened(), 6u);
  EXPECT_EQ(http->queued_requests(server_ep(80)), 0u);
}

TEST_F(HttpLimits, ConfigurableLimit) {
  http->set_max_connections_per_host(2);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    http->request(server_ep(80), get("/echo"),
                  [&](HttpResponse, HttpClient::TransferInfo) { ++done; });
  }
  EXPECT_EQ(http->live_connections(server_ep(80)), 2u);
  run_all();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(http->connections_opened(), 2u);
}

TEST_F(HttpLimits, QueuedRequestsCompleteInOrder) {
  http->set_max_connections_per_host(1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    http->request(server_ep(80), get("/payload?size=" + std::to_string(i + 1)),
                  [&order, i](HttpResponse r, HttpClient::TransferInfo) {
                    EXPECT_EQ(r.body.size(), static_cast<std::size_t>(i + 1));
                    order.push_back(i);
                  });
  }
  run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(HttpLimits, QueuedRequestReusesFreedConnection) {
  http->set_max_connections_per_host(1);
  int done = 0;
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo info) {
                  EXPECT_TRUE(info.opened_new_connection);
                  ++done;
                });
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo info) {
                  EXPECT_FALSE(info.opened_new_connection);
                  ++done;
                });
  run_all();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(http->connections_opened(), 1u);
}

TEST_F(HttpLimits, SlotFreedWhenServerClosesConnection) {
  http->set_max_connections_per_host(1);
  HttpRequest closing = get("/echo");
  closing.headers.set("Connection", "close");
  int done = 0;
  http->request(server_ep(80), closing,
                [&](HttpResponse, HttpClient::TransferInfo) { ++done; });
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo info) {
                  // The first connection died; a fresh one must open.
                  EXPECT_TRUE(info.opened_new_connection);
                  ++done;
                });
  run_all();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(http->connections_opened(), 2u);
  EXPECT_EQ(http->live_connections(server_ep(80)), 1u);
}

TEST_F(HttpLimits, RedirectFollowedWhenEnabled) {
  HttpClient::Options opts;
  opts.max_redirects = 5;
  std::optional<HttpResponse> got;
  http->request(server_ep(80), get("/redirect?to=/echo"),
                [&](HttpResponse r, HttpClient::TransferInfo) { got = r; },
                opts);
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "pong");
}

TEST_F(HttpLimits, RedirectDeliveredRawWhenDisabled) {
  std::optional<HttpResponse> got;
  http->request(server_ep(80), get("/redirect?to=/echo"),
                [&](HttpResponse r, HttpClient::TransferInfo) { got = r; });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 302);
  EXPECT_EQ(got->headers.get("Location"), "/echo");
}

TEST_F(HttpLimits, RedirectChainCostsExtraRoundTrips) {
  // /redirect -> /redirect2 -> /echo: two extra round trips.
  web->route("GET", "/hop2", [](const HttpRequest&) {
    HttpResponse r = HttpResponse::make(302, "");
    r.headers.set("Location", "/echo");
    return r;
  });
  HttpClient::Options opts;
  opts.max_redirects = 5;

  sim::TimePoint direct_done, chained_done;
  const sim::TimePoint t0 = sim->now();
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo) {
                  direct_done = sim->now();
                });
  run_all();
  const sim::TimePoint t1 = sim->now();
  http->request(server_ep(80), get("/redirect?to=/hop2"),
                [&](HttpResponse r, HttpClient::TransferInfo info) {
                  EXPECT_EQ(r.body, "pong");
                  chained_done = sim->now();
                  // TransferInfo covers the whole chain.
                  EXPECT_EQ(info.started, t1);
                },
                opts);
  run_all();
  const auto direct = direct_done - t0;
  const auto chained = chained_done - t1;
  EXPECT_GT(chained, direct * 2);
}

TEST_F(HttpLimits, RedirectLoopStopsAtLimit) {
  web->route("GET", "/loop", [](const HttpRequest&) {
    HttpResponse r = HttpResponse::make(302, "");
    r.headers.set("Location", "/loop");
    return r;
  });
  HttpClient::Options opts;
  opts.max_redirects = 3;
  std::optional<int> status;
  http->request(server_ep(80), get("/loop"),
                [&](HttpResponse r, HttpClient::TransferInfo) {
                  status = r.status;
                });
  // Without follow (default), raw 302; with follow, the 4th response is
  // delivered raw once the budget runs out.
  http->request(server_ep(80), get("/loop"),
                [&](HttpResponse r, HttpClient::TransferInfo) {
                  status = r.status;
                },
                opts);
  run_all();
  EXPECT_EQ(status, 302);
}

TEST_F(HttpLimits, AbsoluteLocationParsed) {
  web->route("GET", "/abs", [](const HttpRequest&) {
    HttpResponse r = HttpResponse::make(302, "");
    r.headers.set("Location", "http://10.0.0.2:80/echo");
    return r;
  });
  HttpClient::Options opts;
  opts.max_redirects = 1;
  std::optional<std::string> body;
  http->request(server_ep(80), get("/abs"),
                [&](HttpResponse r, HttpClient::TransferInfo) {
                  body = r.body;
                },
                opts);
  run_all();
  EXPECT_EQ(body, "pong");
}

}  // namespace
}  // namespace bnm::http
