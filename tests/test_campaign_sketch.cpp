// Property tests for the campaign layer's streaming-stats substrate:
// stats::QuantileSketch (rank accuracy vs the exact quantile, exact
// order-free merges, JSON round trip) and stats::MovingMin (window-min
// equivalence to brute force).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.h"
#include "stats/descriptive.h"
#include "stats/moving_min.h"
#include "stats/quantile_sketch.h"

namespace bnm::stats {
namespace {

std::vector<double> uniform_stream(std::uint64_t seed, int n) {
  sim::Rng rng{seed};
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.uniform(1.0, 1000.0));
  return xs;
}

std::vector<double> lognormal_stream(std::uint64_t seed, int n) {
  sim::Rng rng{seed};
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal_med(40.0, 0.6));
  return xs;
}

/// Worst case for a streaming sketch: fully sorted input (no mixing).
std::vector<double> adversarial_sorted_stream(int n) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xs.push_back(0.01 * std::pow(1.004, static_cast<double>(i)));
  }
  std::sort(xs.begin(), xs.end());
  return xs;
}

/// The sketch's contract: any quantile is off by at most one log-grid cell
/// in value, i.e. relative error <= cell_ratio - 1 for values inside the
/// grid (plus the zero cell's +-lo absolute band).
void expect_quantiles_within_bound(const std::vector<double>& xs) {
  QuantileSketch sketch;
  for (double x : xs) sketch.insert(x);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double rel = sketch.cell_ratio() - 1.0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = quantile_sorted(sorted, q);
    const double approx = sketch.quantile(q);
    const double tol = std::fabs(exact) * rel + sketch.grid().lo + 1e-12;
    EXPECT_NEAR(approx, exact, tol) << "q=" << q << " n=" << xs.size();
  }
  EXPECT_EQ(sketch.count(), xs.size());
  EXPECT_DOUBLE_EQ(sketch.min(), sorted.front());
  EXPECT_DOUBLE_EQ(sketch.max(), sorted.back());
}

TEST(QuantileSketch, RankAccuracyUniform) {
  expect_quantiles_within_bound(uniform_stream(1, 5000));
}

TEST(QuantileSketch, RankAccuracyLognormal) {
  expect_quantiles_within_bound(lognormal_stream(2, 5000));
}

TEST(QuantileSketch, RankAccuracyAdversarialSorted) {
  expect_quantiles_within_bound(adversarial_sorted_stream(4000));
}

TEST(QuantileSketch, EmptyAndEdgeQuantiles) {
  QuantileSketch s;
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.mean()));
  s.insert(5.0);
  s.insert(-3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), -3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(QuantileSketch, NaNInsertsAreDropped) {
  QuantileSketch s;
  s.insert(std::nan(""));
  EXPECT_EQ(s.count(), 0u);
  s.insert(2.0);
  s.insert(std::nan(""));
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);
}

TEST(QuantileSketch, NegativeAndSubResolutionValues) {
  QuantileSketch s;
  s.insert(-50.0);
  s.insert(0.0);        // zero cell
  s.insert(0.0001);     // below grid lo: zero cell too
  s.insert(50.0);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), -50.0);
  EXPECT_DOUBLE_EQ(s.max(), 50.0);
  // Median of 4 falls between the zero-cell entries: inside [-lo, lo].
  EXPECT_LE(std::fabs(s.quantile(0.5)), s.grid().lo);
}

// The campaign's byte-identity guarantee rests on this: merging any
// grouping of any ordering of sub-sketches equals the single-stream
// sketch, exactly (operator== compares every bucket, count, sum, extrema).
TEST(QuantileSketch, MergeIsExactAndGroupingFree) {
  const std::vector<double> xs = lognormal_stream(3, 3000);
  QuantileSketch whole;
  for (double x : xs) whole.insert(x);

  for (std::size_t parts : {2u, 7u, 30u}) {
    std::vector<QuantileSketch> shards(parts);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      shards[i % parts].insert(xs[i]);
    }
    // Merge in reverse order — commutativity must make it irrelevant.
    QuantileSketch merged;
    for (std::size_t i = shards.size(); i-- > 0;) merged.merge(shards[i]);
    EXPECT_TRUE(merged == whole) << parts << " shards";
    EXPECT_EQ(merged.to_json().dump(), whole.to_json().dump());
  }
}

TEST(QuantileSketch, JsonRoundTrip) {
  QuantileSketch s;
  for (double x : uniform_stream(4, 500)) s.insert(x);
  s.insert(-1.5);
  QuantileSketch back;
  ASSERT_TRUE(QuantileSketch::from_json(s.to_json(), &back));
  EXPECT_TRUE(back == s);
  EXPECT_EQ(back.to_json().dump(), s.to_json().dump());
}

TEST(QuantileSketch, FromJsonRejectsShapeMismatches) {
  QuantileSketch s;
  s.insert(1.0);
  obs::json::Value v = s.to_json();
  QuantileSketch out;
  // Bucket index out of range.
  obs::json::Value bad = v;
  bad.members()[7].second.items()[0].items()[0] =
      obs::json::Value::integer(1 << 20);
  EXPECT_FALSE(QuantileSketch::from_json(bad, &out));
  // Count that does not match the bucket total.
  obs::json::Value bad2 = v;
  bad2.members()[3].second = obs::json::Value::integer(5);
  EXPECT_FALSE(QuantileSketch::from_json(bad2, &out));
}

TEST(QuantileSketch, MemoryIsFixedForAGrid) {
  QuantileSketch a, b;
  for (double x : uniform_stream(5, 10)) a.insert(x);
  for (double x : uniform_stream(6, 10000)) b.insert(x);
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  // 512 cells/sign + zero cell at 8 bytes each, plus the object.
  EXPECT_LT(b.memory_bytes(), 16u * 1024u);
}

TEST(MovingMin, MatchesBruteForce) {
  sim::Rng rng{11};
  MovingMin window{8};
  std::vector<double> history;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    history.push_back(v);
    const double got = window.push(v);
    const std::size_t first = history.size() > 8 ? history.size() - 8 : 0;
    const double expect =
        *std::min_element(history.begin() + static_cast<long>(first),
                          history.end());
    ASSERT_DOUBLE_EQ(got, expect) << "i=" << i;
    ASSERT_DOUBLE_EQ(window.min(), expect);
  }
}

TEST(MovingMin, WindowOneTracksLastSample) {
  MovingMin w{1};
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_DOUBLE_EQ(w.push(5.0), 5.0);
  EXPECT_DOUBLE_EQ(w.push(9.0), 9.0);  // 5 left the window
  EXPECT_DOUBLE_EQ(w.push(2.0), 2.0);
}

TEST(MovingMin, ZeroWindowClampsToOne) {
  MovingMin w{0};
  EXPECT_EQ(w.window(), 1u);
}

TEST(MovingMin, Reset) {
  MovingMin w{4};
  w.push(1.0);
  w.push(2.0);
  w.reset();
  EXPECT_TRUE(w.empty());
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_DOUBLE_EQ(w.push(7.0), 7.0);
}

}  // namespace
}  // namespace bnm::stats
