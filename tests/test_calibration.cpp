#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.h"

namespace bnm::core {
namespace {

using browser::BrowserId;
using browser::OsId;

OverheadSeries run(methods::ProbeKind kind, BrowserId b, OsId os, int runs,
                   std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.kind = kind;
  cfg.browser = b;
  cfg.os = os;
  cfg.runs = runs;
  cfg.seed = seed;
  return run_experiment(cfg);
}

TEST(CalibrationTable, LearnLookupAndCorrect) {
  CalibrationTable table;
  CalibrationRecord rec;
  rec.case_label = "C (U)";
  rec.kind = methods::ProbeKind::kXhrGet;
  rec.median_overhead_ms = 4.5;
  rec.iqr_ms = 1.0;
  rec.samples = 50;
  table.add(rec);

  const auto found = table.lookup("C (U)", methods::ProbeKind::kXhrGet);
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->median_overhead_ms, 4.5);
  EXPECT_FALSE(table.lookup("C (U)", methods::ProbeKind::kDom).has_value());
  EXPECT_FALSE(table.lookup("F (U)", methods::ProbeKind::kXhrGet).has_value());

  EXPECT_DOUBLE_EQ(
      table.corrected_rtt_ms("C (U)", methods::ProbeKind::kXhrGet, 54.5),
      50.0);
  // No record: passthrough.
  EXPECT_DOUBLE_EQ(
      table.corrected_rtt_ms("C (U)", methods::ProbeKind::kDom, 54.5), 54.5);
}

TEST(CalibrationTable, CsvRoundTrip) {
  CalibrationTable table;
  CalibrationRecord rec;
  rec.case_label = "IE (W)";
  rec.kind = methods::ProbeKind::kFlashGet;
  rec.median_overhead_ms = 57.25;
  rec.iqr_ms = 30.5;
  rec.samples = 50;
  table.add(rec);
  rec.case_label = "C (U)";
  rec.kind = methods::ProbeKind::kWebSocket;
  rec.median_overhead_ms = -0.06;
  table.add(rec);

  const auto restored = CalibrationTable::from_csv(table.to_csv());
  EXPECT_EQ(restored.size(), 2u);
  const auto ie = restored.lookup("IE (W)", methods::ProbeKind::kFlashGet);
  ASSERT_TRUE(ie.has_value());
  EXPECT_NEAR(ie->median_overhead_ms, 57.25, 1e-6);
  const auto cu = restored.lookup("C (U)", methods::ProbeKind::kWebSocket);
  ASSERT_TRUE(cu.has_value());
  EXPECT_NEAR(cu->median_overhead_ms, -0.06, 1e-6);
}

TEST(CalibrationTable, FromCsvIgnoresGarbage) {
  const auto table = CalibrationTable::from_csv(
      "case,kind,median_overhead_ms,iqr_ms,samples\n"
      "not a record\n"
      "\"ok\",0,1.0,0.5,10\n"
      "\"broken,1,xx\n");
  EXPECT_EQ(table.size(), 1u);
}

TEST(CalibrationTable, ConsistentMethodCalibratesWell) {
  // Learn on one experiment, evaluate on an independent one (different
  // seed): DOM's residual collapses to well under its raw overhead.
  CalibrationTable table;
  const auto train =
      run(methods::ProbeKind::kDom, BrowserId::kChrome, OsId::kUbuntu, 30, 1);
  table.learn(train);
  const auto fresh =
      run(methods::ProbeKind::kDom, BrowserId::kChrome, OsId::kUbuntu, 30, 999);
  const double raw = std::fabs(fresh.d2_box().median);
  const double residual = table.residual_ms(fresh);
  EXPECT_LT(residual, raw);
  EXPECT_LT(residual, 1.5);
}

TEST(CalibrationTable, FlashHttpResistsCalibration) {
  CalibrationTable table;
  const auto train = run(methods::ProbeKind::kFlashGet, BrowserId::kSafari,
                         OsId::kWindows7, 30, 1);
  table.learn(train);
  const auto fresh = run(methods::ProbeKind::kFlashGet, BrowserId::kSafari,
                         OsId::kWindows7, 30, 999);
  const double flash_residual = table.residual_ms(fresh);

  CalibrationTable ws_table;
  const auto ws_train = run(methods::ProbeKind::kWebSocket, BrowserId::kChrome,
                            OsId::kUbuntu, 30, 1);
  ws_table.learn(ws_train);
  const auto ws_fresh = run(methods::ProbeKind::kWebSocket, BrowserId::kChrome,
                            OsId::kUbuntu, 30, 999);
  const double ws_residual = ws_table.residual_ms(ws_fresh);

  // The paper's point: Flash's variability defeats calibration; a
  // consistent method's residual is an order of magnitude smaller.
  EXPECT_GT(flash_residual, 8.0);
  EXPECT_LT(ws_residual, 1.0);
  EXPECT_GT(flash_residual, ws_residual * 5);
}

TEST(CalibrationTable, LearnSkipsEmptySeries) {
  CalibrationTable table;
  OverheadSeries empty;
  empty.case_label = "X";
  table.learn(empty);
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace bnm::core
