// End-to-end measurement resilience: the full method matrix stays bounded
// and correctly accounted when the testbed path is impaired mid-experiment,
// and a disabled fault stage leaves baseline results bit-identical.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "browser/profile.h"
#include "core/experiment.h"
#include "core/loss_experiment.h"
#include "net/fault.h"

namespace bnm::core {
namespace {

sim::TimePoint epoch() { return sim::TimePoint::epoch(); }

// ------------------------------------------------- bounded completion

// Every method, with the path to the server blackholed across the whole
// first repetition: run 1 must settle as a timeout or transport error
// (never hang), and later repetitions - after the blackhole lifts - must
// recover with clean samples.
class FaultedMatrix : public ::testing::TestWithParam<methods::ProbeKind> {};

TEST_P(FaultedMatrix, BlackholedFirstRunSettlesAndRecovers) {
  ExperimentConfig cfg;
  cfg.browser = browser::BrowserId::kChrome;
  cfg.os = browser::OsId::kUbuntu;
  cfg.kind = GetParam();
  cfg.runs = 2;
  cfg.sample_deadline = sim::Duration::seconds(10);
  cfg.http_request_timeout = sim::Duration::seconds(2);
  cfg.http_max_retries = 1;
  cfg.probe_timeout = sim::Duration::seconds(2);
  net::FaultPlan plan;
  plan.name = "to-server";
  plan.blackhole(epoch(), epoch() + sim::Duration::seconds(12));
  cfg.testbed.faults_to_server = plan;

  const OverheadSeries series = run_experiment(cfg);

  // Run 1 (inside the blackhole) degrades; run 2 starts after the deadline
  // plus the inter-run gap (>= 13 s), past the window, and must be clean.
  EXPECT_EQ(series.failures, 1) << series.first_error;
  EXPECT_EQ(series.accounting.total(), series.failures);
  ASSERT_EQ(series.samples.size(), 1u) << series.first_error;
  const OverheadSample& s = series.samples.front();
  EXPECT_GT(s.net_rtt1_ms, 50.0);
  EXPECT_LT(s.net_rtt1_ms, 52.0);
  EXPECT_GT(s.net_rtt2_ms, 50.0);
  EXPECT_LT(s.net_rtt2_ms, 52.0);
}

std::string kind_name(const ::testing::TestParamInfo<methods::ProbeKind>& i) {
  std::string n = browser::probe_kind_name(i.param);
  for (auto& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(EveryMethod, FaultedMatrix,
                         ::testing::ValuesIn(browser::all_probe_kinds()),
                         kind_name);

// ------------------------------------------------- accounting paths

TEST(FaultAccounting, SampleDeadlineCancelsHungRuns) {
  // Total loss toward the server and no HTTP timeout configured: the page
  // load's TCP handshake retransmits far past the deadline, so every run
  // must be cancelled at the sample deadline - not hang.
  ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kXhrGet;
  cfg.runs = 2;
  cfg.sample_deadline = sim::Duration::seconds(2);
  net::FaultPlan plan;
  plan.loss_probability = 1.0;
  cfg.testbed.faults_to_server = plan;

  const OverheadSeries series = run_experiment(cfg);

  EXPECT_TRUE(series.samples.empty());
  EXPECT_EQ(series.failures, 2);
  EXPECT_EQ(series.accounting.timeouts, 2);
  EXPECT_EQ(series.accounting.total(), 2);
  EXPECT_EQ(series.first_error, "sample deadline exceeded");
}

TEST(FaultAccounting, HttpTimeoutSurfacesTransportErrors) {
  // Same total loss, but with a request timeout armed: the HTTP layer fails
  // each probe fast and the run settles as a transport error well before
  // the sample deadline.
  ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kXhrGet;
  cfg.runs = 2;
  cfg.sample_deadline = sim::Duration::seconds(10);
  cfg.http_request_timeout = sim::Duration::millis(500);
  net::FaultPlan plan;
  plan.loss_probability = 1.0;
  cfg.testbed.faults_to_server = plan;

  const OverheadSeries series = run_experiment(cfg);

  EXPECT_TRUE(series.samples.empty());
  EXPECT_EQ(series.failures, 2);
  EXPECT_EQ(series.accounting.transport_errors, 2);
  EXPECT_EQ(series.accounting.timeouts, 0);
  EXPECT_GE(series.accounting.http_timeouts, 2u);
}

TEST(FaultAccounting, JavaUdpProbeTimeoutBoundsLostReplies) {
  // The Java UDP probe has no transport-level recovery: with its datagrams
  // dropped, only the SO_TIMEOUT bound (ctx.probe_timeout) ends the wait.
  ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kJavaUdp;
  cfg.runs = 2;
  cfg.sample_deadline = sim::Duration::seconds(10);
  cfg.http_request_timeout = sim::Duration::millis(500);  // page load fails fast
  cfg.probe_timeout = sim::Duration::seconds(1);
  net::FaultPlan plan;
  plan.loss_probability = 1.0;
  cfg.testbed.faults_to_server = plan;

  const OverheadSeries series = run_experiment(cfg);

  EXPECT_TRUE(series.samples.empty());
  EXPECT_EQ(series.failures, 2);
  EXPECT_EQ(series.accounting.transport_errors, 2);
  EXPECT_EQ(series.accounting.timeouts, 0);
  EXPECT_EQ(series.first_error, "receive timed out");
}

// ------------------------------------------------- baseline bit-identity

TEST(FaultBaseline, DisabledInjectorIsBitIdentical) {
  ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kXhrGet;
  cfg.runs = 3;
  const OverheadSeries plain = run_experiment(cfg);

  // Same experiment with empty fault plans spliced into both directions:
  // the injectors are installed but inactive, draw zero random numbers, and
  // every sample must match the plain run exactly.
  cfg.testbed.faults_to_server = net::FaultPlan{};
  cfg.testbed.faults_from_server = net::FaultPlan{};
  const OverheadSeries staged = run_experiment(cfg);

  EXPECT_EQ(plain.failures, staged.failures);
  ASSERT_EQ(plain.samples.size(), staged.samples.size());
  for (std::size_t i = 0; i < plain.samples.size(); ++i) {
    const OverheadSample& a = plain.samples[i];
    const OverheadSample& b = staged.samples[i];
    EXPECT_EQ(a.d1_ms, b.d1_ms);
    EXPECT_EQ(a.d2_ms, b.d2_ms);
    EXPECT_EQ(a.browser_rtt1_ms, b.browser_rtt1_ms);
    EXPECT_EQ(a.browser_rtt2_ms, b.browser_rtt2_ms);
    EXPECT_EQ(a.net_rtt1_ms, b.net_rtt1_ms);
    EXPECT_EQ(a.net_rtt2_ms, b.net_rtt2_ms);
    EXPECT_EQ(a.connections_opened1, b.connections_opened1);
    EXPECT_EQ(a.connections_opened2, b.connections_opened2);
  }
}

// ------------------------------------------------- GE loss experiment

TEST(FaultLossExperiment, BurstyLossAgreesWithGroundTruth) {
  // Gilbert-Elliott loss on the echo return path: the browser's loss count
  // must agree with the capture's except for stragglers arriving after the
  // drain deadline, which are accounted as late_arrivals - the paper's
  // Section 2 claim that loss measurement is not inflated by the browser.
  LossReorderingExperiment::Config cfg;
  cfg.probes = 300;
  cfg.probe_interval = sim::Duration::millis(5);
  net::FaultPlan plan;
  plan.name = "from-server";
  net::GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.5;
  ge.loss_bad = 1.0;
  plan.bursty_loss = ge;
  cfg.testbed.faults_from_server = plan;

  LossReorderingExperiment exp{cfg};
  const LossReorderingResult result = exp.run();

  EXPECT_EQ(result.probes_sent, 300);
  EXPECT_GT(result.net_received, 0);
  EXPECT_LT(result.net_received, 300);
  // Stationary GE loss here is p_g2b / (p_g2b + p_b2g) ~= 9.1%.
  EXPECT_NEAR(result.net_loss_rate(), 0.0909, 0.06);
  // Browser-vs-wire disagreement is exactly the late arrivals.
  EXPECT_NEAR(result.loss_rate_error(),
              static_cast<double>(result.late_arrivals) / result.probes_sent,
              1e-12);
  const auto* inj = exp.testbed().faults_from_server();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->counters().burst_losses,
            static_cast<std::uint64_t>(300 - result.net_received));
}

}  // namespace
}  // namespace bnm::core
