// Measurement-stack resilience under injected faults:
//   - HTTP client: per-request timeout, bounded retries with exponential
//     backoff, connection-reset surfacing; every request is answered (the
//     status-0 sentinel) - no caller ever hangs.
//   - TCP: the retransmission timer backs off exponentially, clamps at
//     rto_max, and a connection that exhausts max_retransmissions aborts
//     through the error callback exactly once.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "http/client.h"
#include "http/server.h"
#include "net_fixture.h"

namespace bnm::net {
namespace {

using test::TwoHostFixture;

sim::TimePoint epoch() { return sim::TimePoint::epoch(); }

class HttpFaultFixture : public TwoHostFixture {
 protected:
  void SetUp() override {}  // each test sets its fault plan, then init()

  void init() {
    build();
    http::WebServer::Config wc;
    wc.port = 80;
    web = std::make_unique<http::WebServer>(*server, wc);
    http = std::make_unique<http::HttpClient>(*client);
  }

  http::HttpRequest get(const std::string& target) {
    http::HttpRequest r;
    r.method = "GET";
    r.target = target;
    return r;
  }

  std::unique_ptr<http::WebServer> web;
  std::unique_ptr<http::HttpClient> http;
};

TEST_F(HttpFaultFixture, RequestTimeoutSettlesWithStatusZero) {
  FaultPlan plan;
  plan.name = "client-egress";
  plan.blackhole(epoch(), epoch() + sim::Duration::seconds(3600));
  client_egress_faults = plan;
  init();

  std::optional<http::HttpResponse> got;
  sim::TimePoint settled_at;
  http::HttpClient::Options opts;
  opts.request_timeout = sim::Duration::millis(500);
  http->request(server_ep(80), get("/echo"),
                [&](http::HttpResponse r, http::HttpClient::TransferInfo) {
                  got = std::move(r);
                  settled_at = sim->now();
                },
                opts);
  run_all();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 0);
  EXPECT_EQ(settled_at - epoch(), sim::Duration::millis(500));
  EXPECT_EQ(http->request_timeouts(), 1u);
  EXPECT_EQ(http->request_failures(), 1u);
  EXPECT_EQ(http->request_retries(), 0u);
}

TEST_F(HttpFaultFixture, RetriesWithExponentialBackoffRecover) {
  FaultPlan plan;
  plan.name = "client-egress";
  plan.blackhole(epoch(), epoch() + sim::Duration::millis(1200));
  client_egress_faults = plan;
  init();

  std::optional<http::HttpResponse> got;
  std::optional<http::HttpClient::TransferInfo> info;
  http::HttpClient::Options opts;
  opts.request_timeout = sim::Duration::millis(500);
  opts.max_retries = 2;
  opts.retry_backoff = sim::Duration::millis(100);
  http->request(server_ep(80), get("/echo"),
                [&](http::HttpResponse r, http::HttpClient::TransferInfo i) {
                  got = std::move(r);
                  info = i;
                },
                opts);
  run_all();

  // Attempt 1 times out at 500 ms, retry at 600 ms; attempt 2 times out at
  // 1100 ms, retry (backoff doubled to 200 ms) at 1300 ms - past the
  // blackhole, so attempt 3 succeeds.
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->retries, 2);
  EXPECT_EQ(http->request_retries(), 2u);
  EXPECT_EQ(http->request_timeouts(), 2u);
  EXPECT_EQ(http->request_failures(), 0u);
}

TEST_F(HttpFaultFixture, RetryBudgetExhaustionFailsClosed) {
  FaultPlan plan;
  plan.name = "client-egress";
  plan.blackhole(epoch(), epoch() + sim::Duration::seconds(3600));
  client_egress_faults = plan;
  init();

  std::optional<http::HttpResponse> got;
  http::HttpClient::Options opts;
  opts.request_timeout = sim::Duration::millis(200);
  opts.max_retries = 3;
  opts.retry_backoff = sim::Duration::millis(50);
  http->request(server_ep(80), get("/echo"),
                [&](http::HttpResponse r, http::HttpClient::TransferInfo) {
                  got = std::move(r);
                },
                opts);
  run_all();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 0);
  EXPECT_EQ(http->request_retries(), 3u);
  EXPECT_EQ(http->request_timeouts(), 4u);  // every attempt timed out
  EXPECT_EQ(http->request_failures(), 1u);
}

TEST_F(HttpFaultFixture, ConnectionResetSurfacesAsStatusZero) {
  init();  // no faults; port 81 has no listener, the server RSTs the SYN

  std::optional<http::HttpResponse> got;
  http->request(server_ep(81), get("/echo"),
                [&](http::HttpResponse r, http::HttpClient::TransferInfo) {
                  got = std::move(r);
                });
  run_all();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 0);
  EXPECT_EQ(http->request_failures(), 1u);
  EXPECT_EQ(http->request_timeouts(), 0u);
}

TEST_F(HttpFaultFixture, ClientDefaultsApplyToPlainRequests) {
  FaultPlan plan;
  plan.name = "client-egress";
  plan.blackhole(epoch(), epoch() + sim::Duration::seconds(3600));
  client_egress_faults = plan;
  init();
  http->set_default_timeout(sim::Duration::millis(300));
  http->set_default_retries(1, sim::Duration::millis(50));

  std::optional<http::HttpResponse> got;
  // Plain request() with no Options: the client-wide defaults must bound it.
  http->request(server_ep(80), get("/echo"),
                [&](http::HttpResponse r, http::HttpClient::TransferInfo) {
                  got = std::move(r);
                });
  run_all();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 0);
  EXPECT_EQ(http->request_timeouts(), 2u);
  EXPECT_EQ(http->request_retries(), 1u);
}

// ------------------------------------------------------------ TCP backoff

class TcpRtoFixture : public TwoHostFixture {
 protected:
  void SetUp() override {
    tcp_config.rto_initial = sim::Duration::millis(10);
    tcp_config.rto_max = sim::Duration::millis(80);
    tcp_config.max_retransmissions = 5;
    FaultPlan plan;
    plan.name = "client-egress";
    // Handshake completes unimpaired; everything after 500 ms vanishes.
    plan.blackhole(epoch() + sim::Duration::millis(500),
                   epoch() + sim::Duration::seconds(3600));
    client_egress_faults = plan;
    build();
    server->tcp_listen(9000, [this](std::shared_ptr<TcpConnection> c) {
      accepted.push_back(std::move(c));
    });
  }

  std::vector<std::shared_ptr<TcpConnection>> accepted;
};

TEST_F(TcpRtoFixture, RtoDoublesClampsAndAbortsExactlyOnce) {
  int resets = 0;
  TcpCallbacks cbs;
  cbs.on_reset = [&resets] { ++resets; };
  auto conn = client->tcp_connect(server_ep(9000), std::move(cbs));

  run_for(sim::Duration::millis(100));
  ASSERT_TRUE(conn->established());
  EXPECT_EQ(conn->rto_current(), sim::Duration::millis(10));

  run_for(sim::Duration::millis(450));  // now inside the blackhole
  conn->send("probe");

  // Record the backoff value after each consecutive RTO expiry.
  std::vector<sim::Duration> rto_after;
  std::uint64_t last = conn->consecutive_rtos();
  const sim::TimePoint stop = sim->now() + sim::Duration::seconds(5);
  while (sim->now() < stop && sim->scheduler().step()) {
    if (conn->consecutive_rtos() != last) {
      last = conn->consecutive_rtos();
      rto_after.push_back(conn->rto_current());
    }
  }

  // 10 ms doubles to 20, 40, 80, then clamps at rto_max; the 6th expiry
  // exceeds max_retransmissions and aborts instead of retransmitting.
  ASSERT_EQ(rto_after.size(), 6u);
  EXPECT_EQ(rto_after[0], sim::Duration::millis(20));
  EXPECT_EQ(rto_after[1], sim::Duration::millis(40));
  EXPECT_EQ(rto_after[2], sim::Duration::millis(80));
  EXPECT_EQ(rto_after[3], sim::Duration::millis(80));
  EXPECT_EQ(rto_after[4], sim::Duration::millis(80));
  EXPECT_EQ(rto_after[5], sim::Duration::millis(80));
  EXPECT_EQ(resets, 1);
  EXPECT_FALSE(conn->established());

  // Nothing left ticking: the abort cancelled all timers.
  run_for(sim::Duration::seconds(2));
  EXPECT_EQ(resets, 1);
}

}  // namespace
}  // namespace bnm::net
