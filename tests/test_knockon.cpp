#include <gtest/gtest.h>

#include "core/knockon.h"

namespace bnm::core {
namespace {

OverheadSeries series_with_rtts(std::vector<std::pair<double, double>> pairs) {
  OverheadSeries s;
  for (const auto& [browser_rtt, net_rtt] : pairs) {
    OverheadSample sample;
    sample.browser_rtt2_ms = browser_rtt;
    sample.net_rtt2_ms = net_rtt;
    s.samples.push_back(sample);
  }
  return s;
}

TEST(JitterReportTest, MeanAbsoluteDifference) {
  // browser RTTs: 50, 54, 50 -> |4| + |4| / 2 = 4; net constant -> 0.
  const auto s = series_with_rtts({{50, 50.1}, {54, 50.1}, {50, 50.1}});
  const auto j = jitter_report(s);
  EXPECT_DOUBLE_EQ(j.browser_jitter_ms, 4.0);
  EXPECT_DOUBLE_EQ(j.net_jitter_ms, 0.0);
  EXPECT_DOUBLE_EQ(j.inflation(), 0.0);  // guarded division
}

TEST(JitterReportTest, InflationRatio) {
  const auto s = series_with_rtts({{50, 50.0}, {60, 50.5}, {50, 50.0}});
  const auto j = jitter_report(s);
  EXPECT_DOUBLE_EQ(j.browser_jitter_ms, 10.0);
  EXPECT_DOUBLE_EQ(j.net_jitter_ms, 0.5);
  EXPECT_DOUBLE_EQ(j.inflation(), 20.0);
}

TEST(JitterReportTest, TooFewSamples) {
  const auto j = jitter_report(series_with_rtts({{50, 50}}));
  EXPECT_DOUBLE_EQ(j.browser_jitter_ms, 0.0);
}

TEST(ThroughputExperimentTest, BrowserUnderestimatesMostForSmallPayloads) {
  ThroughputExperiment::Config cfg;
  cfg.payload_sizes = {1024, 256 * 1024};
  cfg.runs_per_size = 3;
  ThroughputExperiment exp{cfg};
  const auto samples = exp.run();
  ASSERT_EQ(samples.size(), 2u);

  for (const auto& s : samples) {
    EXPECT_GT(s.browser_ms, s.net_ms);  // overhead inflates duration
    EXPECT_LT(s.browser_tput_mbps, s.net_tput_mbps);
    EXPECT_GT(s.underestimation(), 1.0);
  }
  // Relative error shrinks with transfer size.
  EXPECT_GT(samples[0].underestimation(), samples[1].underestimation());
}

TEST(ThroughputExperimentTest, WebSocketViaMeasuresAccurately) {
  ThroughputExperiment::Config cfg;
  cfg.via = ThroughputExperiment::Via::kWebSocket;
  cfg.payload_sizes = {10 * 1024};
  cfg.runs_per_size = 3;
  ThroughputExperiment exp{cfg};
  const auto samples = exp.run();
  ASSERT_EQ(samples.size(), 1u);
  // Socket path: under-estimation within a few percent.
  EXPECT_GT(samples[0].underestimation(), 0.99);
  EXPECT_LT(samples[0].underestimation(), 1.08);
}

TEST(ThroughputExperimentTest, WebSocketLessBiasedThanXhr) {
  ThroughputExperiment::Config cfg;
  cfg.payload_sizes = {10 * 1024};
  cfg.runs_per_size = 3;
  ThroughputExperiment xhr{cfg};
  cfg.via = ThroughputExperiment::Via::kWebSocket;
  ThroughputExperiment ws{cfg};
  const auto xs = xhr.run();
  const auto wss = ws.run();
  ASSERT_EQ(xs.size(), 1u);
  ASSERT_EQ(wss.size(), 1u);
  EXPECT_LT(wss[0].underestimation(), xs[0].underestimation());
}

TEST(ThroughputExperimentTest, LargeTransferApproaches100Mbps) {
  ThroughputExperiment::Config cfg;
  cfg.payload_sizes = {4 * 1024 * 1024};
  cfg.runs_per_size = 2;
  ThroughputExperiment exp{cfg};
  const auto samples = exp.run();
  ASSERT_EQ(samples.size(), 1u);
  // 4 MiB over 100 Mbps + 50 ms delay: capture-level throughput lands
  // within [50, 100) Mbps.
  EXPECT_GT(samples[0].net_tput_mbps, 50.0);
  EXPECT_LT(samples[0].net_tput_mbps, 100.0);
}

}  // namespace
}  // namespace bnm::core
