// Gap-filling tests: stray-segment RST behaviour, profile sampling
// statistics, and Simulation RNG stream independence.
#include <gtest/gtest.h>

#include <algorithm>

#include "browser/browser.h"
#include "core/testbed.h"
#include "net_fixture.h"

namespace bnm {
namespace {

using test::TwoHostFixture;

class StrayTcp : public TwoHostFixture {};

TEST_F(StrayTcp, DataToUnknownConnectionGetsRst) {
  // Inject a non-SYN segment for a connection the server never had.
  net::Packet stray;
  stray.protocol = net::Protocol::kTcp;
  stray.src = {client->ip(), 55555};
  stray.dst = server_ep(9000);
  stray.flags.ack = true;
  stray.flags.psh = true;
  stray.seq = 1000;
  stray.ack = 2000;
  stray.payload = net::to_bytes("ghost");

  bool got_rst = false;
  // Watch the client capture for the RST coming back.
  client->tcp_listen(55555, [](std::shared_ptr<net::TcpConnection>) {});
  // Send via a raw path: use the client's send_packet plumbing.
  client->send_packet(stray);
  run_all();
  for (std::size_t i = 0; i < client->capture().size(); ++i) {
    const auto r = client->capture().at(i);
    if (r.direction == net::CaptureDirection::kInbound && r.packet.flags.rst) {
      got_rst = true;
      // RFC-style: RST acks the stray segment's payload.
      EXPECT_EQ(r.packet.ack, 1000u + 5u);
    }
  }
  EXPECT_TRUE(got_rst);
}

TEST_F(StrayTcp, RstIsNotAnsweredWithRst) {
  net::Packet rst;
  rst.protocol = net::Protocol::kTcp;
  rst.src = {client->ip(), 55556};
  rst.dst = server_ep(9000);
  rst.flags.rst = true;
  client->send_packet(rst);
  run_all();
  for (std::size_t i = 0; i < client->capture().size(); ++i) {
    const auto r = client->capture().at(i);
    EXPECT_NE(r.direction == net::CaptureDirection::kInbound &&
                  r.packet.flags.rst,
              true)
        << "RST storm: an RST was answered with an RST";
  }
}

TEST(ProfileSampling, FlashOperaFirstUseMedianMatchesTable3Arithmetic) {
  // Sampling the Opera Flash GET model: warm medians ~20 ms, first-use
  // extra ~26 ms - the Table 3 arithmetic baked into the calibration.
  core::Testbed::Config cfg;
  core::Testbed tb{cfg};
  auto b = tb.launch_browser(
      browser::make_profile(browser::BrowserId::kOpera,
                            browser::OsId::kWindows7),
      0);
  std::vector<double> warm, first;
  for (int i = 0; i < 4000; ++i) {
    warm.push_back(
        (b->sample_pre_send(browser::ProbeKind::kFlashGet, false) +
         b->sample_recv_dispatch(browser::ProbeKind::kFlashGet, false))
            .ms_f());
    first.push_back(
        b->sample_pre_send(browser::ProbeKind::kFlashGet, true).ms_f());
  }
  std::nth_element(warm.begin(), warm.begin() + warm.size() / 2, warm.end());
  std::nth_element(first.begin(), first.begin() + first.size() / 2,
                   first.end());
  EXPECT_NEAR(warm[warm.size() / 2], 20.0, 4.0);
  // first sample = pre_send + first_use ~ 8 + 26.
  EXPECT_NEAR(first[first.size() / 2], 34.0, 6.0);
}

TEST(SimulationRng, StreamsAreIndependentAndStable) {
  sim::Simulation a{7};
  sim::Simulation b{7};
  auto r1 = a.rng_for("component-x");
  auto r2 = b.rng_for("component-x");
  EXPECT_EQ(r1.next_u64(), r2.next_u64());  // same seed+label = same stream
  auto r3 = a.rng_for("component-y");
  auto r4 = a.rng_for("component-x");
  EXPECT_NE(r3.next_u64(), r4.next_u64());  // labels separate streams
}

TEST(BrowserSessions, DistinctSessionsSampleDifferently) {
  core::Testbed::Config cfg;
  core::Testbed tb{cfg};
  const auto profile =
      browser::make_profile(browser::BrowserId::kChrome, browser::OsId::kUbuntu);
  auto s1 = tb.launch_browser(profile, 1);
  auto s2 = tb.launch_browser(profile, 2);
  bool differ = false;
  for (int i = 0; i < 8; ++i) {
    if (s1->sample_pre_send(browser::ProbeKind::kXhrGet, false) !=
        s2->sample_pre_send(browser::ProbeKind::kXhrGet, false)) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace bnm
