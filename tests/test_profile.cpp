#include <gtest/gtest.h>

#include <stdexcept>

#include "browser/profile.h"

namespace bnm::browser {
namespace {

TEST(PaperCases, EightCasesInFigureOrder) {
  const auto cases = paper_cases();
  ASSERT_EQ(cases.size(), 8u);
  EXPECT_EQ(cases[0].label(), "C (U)");
  EXPECT_EQ(cases[3].label(), "C (W)");
  EXPECT_EQ(cases[5].label(), "IE (W)");
  EXPECT_EQ(cases[7].label(), "S (W)");
}

TEST(CaseSupported, Table2Matrix) {
  EXPECT_TRUE(case_supported(BrowserId::kChrome, OsId::kUbuntu));
  EXPECT_TRUE(case_supported(BrowserId::kSafari, OsId::kWindows7));
  EXPECT_FALSE(case_supported(BrowserId::kIe, OsId::kUbuntu));
  EXPECT_FALSE(case_supported(BrowserId::kSafari, OsId::kUbuntu));
}

TEST(MakeProfile, ThrowsOutsideMatrix) {
  EXPECT_THROW(make_profile(BrowserId::kIe, OsId::kUbuntu),
               std::invalid_argument);
  EXPECT_THROW(make_profile(BrowserId::kSafari, OsId::kUbuntu),
               std::invalid_argument);
}

TEST(MakeProfile, WebSocketSupportMatchesTable2) {
  EXPECT_FALSE(make_profile(BrowserId::kIe, OsId::kWindows7).supports_websocket);
  EXPECT_FALSE(
      make_profile(BrowserId::kSafari, OsId::kWindows7).supports_websocket);
  EXPECT_TRUE(
      make_profile(BrowserId::kChrome, OsId::kWindows7).supports_websocket);
  EXPECT_TRUE(make_profile(BrowserId::kOpera, OsId::kUbuntu).supports_websocket);
}

TEST(MakeProfile, VersionsMatchTable2) {
  const auto cw = make_profile(BrowserId::kChrome, OsId::kWindows7);
  EXPECT_EQ(cw.browser_version, "23.0");
  EXPECT_EQ(cw.flash_version, "11.7.700");
  EXPECT_EQ(cw.java_version, "1.7.0");
  const auto cu = make_profile(BrowserId::kChrome, OsId::kUbuntu);
  EXPECT_EQ(cu.flash_version, "11.5.31");
  EXPECT_EQ(cu.java_version, "1.6.0");
  EXPECT_EQ(make_profile(BrowserId::kIe, OsId::kWindows7).browser_version,
            "9.0.8");
}

TEST(MakeProfile, OperaConnectionPolicyQuirks) {
  const auto opera = make_profile(BrowserId::kOpera, OsId::kWindows7);
  EXPECT_TRUE(opera.policy.flash_first_request_new_connection);
  EXPECT_TRUE(opera.policy.flash_post_always_new_connection);
  const auto chrome = make_profile(BrowserId::kChrome, OsId::kWindows7);
  EXPECT_FALSE(chrome.policy.flash_first_request_new_connection);
  EXPECT_FALSE(chrome.policy.flash_post_always_new_connection);
}

TEST(MakeProfile, WindowsJavaClockHasTwoGranularities) {
  const auto w = make_profile(BrowserId::kFirefox, OsId::kWindows7);
  EXPECT_EQ(w.java_date_clock.granularities.size(), 2u);
  const auto u = make_profile(BrowserId::kFirefox, OsId::kUbuntu);
  EXPECT_EQ(u.java_date_clock.granularities.size(), 1u);
  EXPECT_EQ(w.js_date_clock.granularities.size(), 1u);
}

TEST(MakeProfile, SafariPluginNoiseOnlyOnSafariWindows) {
  EXPECT_TRUE(make_profile(BrowserId::kSafari, OsId::kWindows7)
                  .java_date_warm_noise.has_value());
  EXPECT_FALSE(make_profile(BrowserId::kChrome, OsId::kWindows7)
                   .java_date_warm_noise.has_value());
}

TEST(ClockFor, MapsTechnologiesToClocks) {
  const auto p = make_profile(BrowserId::kChrome, OsId::kWindows7);
  EXPECT_EQ(p.clock_for(ProbeKind::kXhrGet, false), ClockKind::kJsDate);
  EXPECT_EQ(p.clock_for(ProbeKind::kDom, false), ClockKind::kJsDate);
  EXPECT_EQ(p.clock_for(ProbeKind::kWebSocket, false), ClockKind::kJsDate);
  EXPECT_EQ(p.clock_for(ProbeKind::kFlashGet, false), ClockKind::kFlashDate);
  EXPECT_EQ(p.clock_for(ProbeKind::kFlashSocket, false), ClockKind::kFlashDate);
  EXPECT_EQ(p.clock_for(ProbeKind::kJavaGet, false), ClockKind::kJavaDate);
  EXPECT_EQ(p.clock_for(ProbeKind::kJavaSocket, true), ClockKind::kJavaNano);
  EXPECT_EQ(p.clock_for(ProbeKind::kJavaUdp, false), ClockKind::kJavaDate);
}

TEST(ProbeKinds, ElevenKindsWithNames) {
  const auto kinds = all_probe_kinds();
  EXPECT_EQ(kinds.size(), 11u);
  EXPECT_STREQ(probe_kind_name(ProbeKind::kXhrGet), "XHR GET");
  EXPECT_STREQ(probe_kind_name(ProbeKind::kWebSocket), "WebSocket");
  EXPECT_STREQ(probe_kind_name(ProbeKind::kJavaUdp),
               "Java applet UDP socket");
}

TEST(Names, InitialsAndOsNames) {
  EXPECT_STREQ(browser_initial(BrowserId::kIe), "IE");
  EXPECT_STREQ(browser_initial(BrowserId::kSafari), "S");
  EXPECT_STREQ(os_initial(OsId::kWindows7), "W");
  EXPECT_STREQ(os_name(OsId::kUbuntu), "Ubuntu 12.04");
}

// --------------------------------------------------------------- DistSpec

TEST(DistSpecTest, ConstantSamplesExactly) {
  sim::Rng rng{31};
  const auto d = DistSpec::constant(4.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d.sample(rng).ms_f(), 4.5);
  }
  EXPECT_DOUBLE_EQ(d.median_ms(), 4.5);
}

TEST(DistSpecTest, UniformWithinBounds) {
  sim::Rng rng{32};
  const auto d = DistSpec::uniform(2.0, 8.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng).ms_f();
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 8.0);
  }
  EXPECT_DOUBLE_EQ(d.median_ms(), 5.0);
}

TEST(DistSpecTest, NormalMayGoNegativeOthersClamp) {
  sim::Rng rng{33};
  const auto norm = DistSpec::normal(-2.0, 0.5);
  bool saw_negative = false;
  for (int i = 0; i < 100; ++i) {
    if (norm.sample(rng).is_negative()) saw_negative = true;
  }
  EXPECT_TRUE(saw_negative);

  const auto uni = DistSpec::uniform(-5.0, -1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(uni.sample(rng), sim::Duration::zero());
  }
}

class DistMedianSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DistMedianSweep, LognormalMedianHolds) {
  const auto [median, sigma] = GetParam();
  sim::Rng rng{77};
  const auto d = DistSpec::lognormal_med(median, sigma);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(d.sample(rng).ms_f());
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], median, median * 0.08);
  EXPECT_DOUBLE_EQ(d.median_ms(), median);
}

INSTANTIATE_TEST_SUITE_P(
    Params, DistMedianSweep,
    ::testing::Combine(::testing::Values(1.0, 20.0, 80.0),
                       ::testing::Values(0.2, 0.45)));

// Calibration sanity: encoded medians reflect the published figure bands.
TEST(Calibration, Figure3Bands) {
  for (const auto& c : paper_cases()) {
    const auto p = make_profile(c.browser, c.os);
    const auto warm = [&](ProbeKind k) {
      const auto m = p.overhead(k);
      return m.pre_send.median_ms() + m.recv_dispatch.median_ms();
    };
    EXPECT_GE(warm(ProbeKind::kXhrGet), 2.0) << c.label();
    EXPECT_LE(warm(ProbeKind::kXhrGet), 30.0) << c.label();
    EXPECT_LE(warm(ProbeKind::kDom), 8.0) << c.label();
    EXPECT_GE(warm(ProbeKind::kFlashGet), 15.0) << c.label();
    EXPECT_LE(warm(ProbeKind::kFlashGet), 110.0) << c.label();
    EXPECT_LE(warm(ProbeKind::kFlashSocket), 4.0) << c.label();
    EXPECT_LE(warm(ProbeKind::kJavaSocket), 0.5) << c.label();
    if (p.supports_websocket) {
      EXPECT_LE(warm(ProbeKind::kWebSocket), 1.5) << c.label();
    }
  }
}

}  // namespace
}  // namespace bnm::browser
