#include <gtest/gtest.h>

#include "sim/random.h"
#include "stats/cdf.h"

namespace bnm::stats {
namespace {

TEST(EmpiricalCdf, StepValues) {
  const EmpiricalCdf cdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);  // right-continuous: P[X <= 1]
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, UnsortedInputSorted) {
  const EmpiricalCdf cdf{{3.0, 1.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf.at(1.5), 1.0 / 3.0);
}

TEST(EmpiricalCdf, Inverse) {
  const EmpiricalCdf cdf{{10, 20, 30, 40}};
  EXPECT_DOUBLE_EQ(cdf.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 40.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 10.0);
}

TEST(EmpiricalCdf, SampleCurveEndpoints) {
  const EmpiricalCdf cdf{{1, 2, 3}};
  const auto pts = cdf.sample_curve(0, 4, 5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().x, 0.0);
  EXPECT_DOUBLE_EQ(pts.front().f, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 4.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(EmpiricalCdf, MassLevelsFindsDiscreteClusters) {
  // Two tight clusters ~15.6 apart (the Fig. 4 signature) + stragglers.
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) xs.push_back(-3.1 + 0.01 * i / 30.0);
  for (int i = 0; i < 15; ++i) xs.push_back(12.5 + 0.01 * i / 15.0);
  xs.push_back(5.0);  // 1/46 of mass: below threshold
  const EmpiricalCdf cdf{xs};
  const auto levels = cdf.mass_levels(1.0, 0.10);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_NEAR(levels[0], -3.1, 0.1);
  EXPECT_NEAR(levels[1], 12.5, 0.1);
  EXPECT_NEAR(levels[1] - levels[0], 15.6, 0.2);
}

TEST(EmpiricalCdf, MassLevelsContinuousDataHasNone) {
  sim::Rng rng{3};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  const EmpiricalCdf cdf{xs};
  EXPECT_TRUE(cdf.mass_levels(1.0, 0.15).empty());
}

TEST(EmpiricalCdf, KsDistanceIdenticalZero) {
  const EmpiricalCdf a{{1, 2, 3}};
  const EmpiricalCdf b{{1, 2, 3}};
  EXPECT_DOUBLE_EQ(a.ks_distance(b), 0.0);
}

TEST(EmpiricalCdf, KsDistanceDisjointOne) {
  const EmpiricalCdf a{{1, 2, 3}};
  const EmpiricalCdf b{{10, 20, 30}};
  EXPECT_DOUBLE_EQ(a.ks_distance(b), 1.0);
}

TEST(EmpiricalCdf, KsDistanceSymmetric) {
  sim::Rng rng{4};
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(rng.normal(0, 1));
    ys.push_back(rng.normal(0.5, 1));
  }
  const EmpiricalCdf a{xs};
  const EmpiricalCdf b{ys};
  EXPECT_DOUBLE_EQ(a.ks_distance(b), b.ks_distance(a));
}

// Property: F is monotone non-decreasing and bounded in [0, 1].
class CdfProperty : public ::testing::TestWithParam<int> {};

TEST_P(CdfProperty, MonotoneAndBounded) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(10, 40));
  const EmpiricalCdf cdf{xs};
  double prev = 0.0;
  for (double x = -150; x <= 180; x += 2.5) {
    const double f = cdf.at(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace bnm::stats
