#include <gtest/gtest.h>

#include <algorithm>

#include "net/capture.h"
#include "sim/simulation.h"
#include "report/sequence_render.h"
#include "sim/trace.h"

namespace bnm {
namespace {

// ------------------------------------------------------------- sim::Trace

TEST(Trace, DisabledByDefaultDropsRecords) {
  sim::Trace trace;
  trace.emit(sim::TimePoint::epoch(), "comp", "message");
  EXPECT_TRUE(trace.records().empty());
}

TEST(Trace, EnabledCollects) {
  sim::Trace trace;
  trace.set_enabled(true);
  trace.emit(sim::TimePoint::epoch(), "tcp", "SYN sent");
  trace.emit(sim::TimePoint::epoch() + sim::Duration::millis(1), "http", "GET");
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.records()[0].component, "tcp");
  EXPECT_EQ(trace.records()[1].message, "GET");
}

TEST(Trace, SinkMirrorsRecords) {
  sim::Trace trace;
  trace.set_enabled(true);
  int sunk = 0;
  trace.set_sink([&](const sim::TraceRecord&) { ++sunk; });
  trace.emit({}, "a", "1");
  trace.emit({}, "a", "2");
  EXPECT_EQ(sunk, 2);
}

TEST(Trace, ByComponentAndContains) {
  sim::Trace trace;
  trace.set_enabled(true);
  trace.emit({}, "tcp", "ESTABLISHED");
  trace.emit({}, "http", "200 OK");
  trace.emit({}, "tcp", "FIN_WAIT_1");
  EXPECT_EQ(trace.view_by_component("tcp").size(), 2u);
  EXPECT_TRUE(trace.contains("200 OK"));
  EXPECT_FALSE(trace.contains("404"));
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

TEST(Trace, SimulationComponentsEmitWhenEnabled) {
  sim::Simulation sim{1};
  sim.trace().set_enabled(true);
  sim.trace().emit(sim.now(), "test", "hello");
  EXPECT_TRUE(sim.trace().contains("hello"));
}

// ------------------------------------------------- report::SequenceRenderer

net::CaptureRecord make_record(bool outbound, net::TcpFlags flags,
                               const std::string& payload, double at_ms) {
  net::CaptureRecord rec;
  rec.timestamp = sim::TimePoint::epoch() + sim::Duration::from_millis_f(at_ms);
  rec.true_time = rec.timestamp;
  rec.direction = outbound ? net::CaptureDirection::kOutbound
                           : net::CaptureDirection::kInbound;
  rec.packet.protocol = net::Protocol::kTcp;
  rec.packet.flags = flags;
  rec.packet.payload = net::to_bytes(payload);
  return rec;
}

class SequenceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sim = std::make_unique<sim::Simulation>(1);
    cap = std::make_unique<net::PacketCapture>(*sim);
    // Reconstruct a canonical handshake + request/response + teardown.
    push(make_record(true, {.syn = true}, "", 0.0));
    push(make_record(false, {.syn = true, .ack = true}, "", 50.0));
    push(make_record(true, {.ack = true}, "", 50.1));
    push(make_record(true, {.ack = true, .psh = true}, "GET", 51.0));
    push(make_record(false, {.ack = true, .psh = true}, "pong", 101.0));
    push(make_record(true, {.ack = true, .fin = true}, "", 102.0));
  }

  void push(const net::CaptureRecord& rec) {
    // PacketCapture has no raw-record injection; emit via record() at the
    // right simulated instant.
    sim->scheduler().schedule_at(rec.true_time, [this, rec] {
      cap->record(rec.direction, rec.packet);
    });
  }

  void run() { sim->scheduler().run(); }

  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<net::PacketCapture> cap;
};

TEST_F(SequenceFixture, RendersArrowsBothDirections) {
  run();
  report::SequenceRenderer renderer;
  const std::string out = renderer.render(*cap);
  EXPECT_NE(out.find("SYN -"), std::string::npos);
  EXPECT_NE(out.find("SYN-ACK"), std::string::npos);
  EXPECT_NE(out.find("data 3B"), std::string::npos);
  EXPECT_NE(out.find("data 4B"), std::string::npos);
  EXPECT_NE(out.find("FIN"), std::string::npos);
  EXPECT_NE(out.find(">"), std::string::npos);
  EXPECT_NE(out.find("<"), std::string::npos);
}

TEST_F(SequenceFixture, HidePureAcks) {
  run();
  report::SequenceRenderer::Options opts;
  opts.hide_pure_acks = true;
  report::SequenceRenderer renderer{opts};
  const std::string out = renderer.render(*cap);
  // 6 records, one pure ACK -> 5 arrow lines + header.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST_F(SequenceFixture, RelativeTimestampsStartAtZero) {
  run();
  report::SequenceRenderer renderer;
  const std::string out = renderer.render(*cap);
  EXPECT_NE(out.find("+0.000ms"), std::string::npos);
  EXPECT_NE(out.find("+50.000ms"), std::string::npos);
}

TEST_F(SequenceFixture, LimitTruncates) {
  run();
  report::SequenceRenderer::Options opts;
  opts.limit = 2;
  report::SequenceRenderer renderer{opts};
  const std::string out = renderer.render(*cap);
  EXPECT_NE(out.find("truncated"), std::string::npos);
}

TEST_F(SequenceFixture, FilterApplies) {
  run();
  report::SequenceRenderer renderer;
  const std::string out =
      renderer.render(*cap, net::PacketCapture::tcp_syn());
  EXPECT_NE(out.find("SYN"), std::string::npos);
  EXPECT_EQ(out.find("FIN"), std::string::npos);
}

TEST(SequenceRendererEmpty, NoPackets) {
  sim::Simulation sim{2};
  net::PacketCapture cap{sim};
  report::SequenceRenderer renderer;
  EXPECT_NE(renderer.render(cap).find("no packets"), std::string::npos);
}

}  // namespace
}  // namespace bnm
