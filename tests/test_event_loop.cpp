#include <gtest/gtest.h>

#include <vector>

#include "browser/event_loop.h"

namespace bnm::browser {
namespace {

TEST(EventLoop, DispatchLatencyApplied) {
  sim::Simulation sim{1};
  EventLoop loop{sim, "test"};
  sim::TimePoint ran;
  loop.post(sim::Duration::millis(7), [&] { ran = sim.now(); });
  sim.scheduler().run();
  EXPECT_EQ(ran - sim::TimePoint::epoch(), sim::Duration::millis(7));
}

TEST(EventLoop, NegativeLatencyClamps) {
  sim::Simulation sim{2};
  EventLoop loop{sim, "test"};
  bool ran = false;
  loop.post(sim::Duration::millis(-5), [&] { ran = true; });
  sim.scheduler().run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, TasksSerializeOnTheMainThread) {
  sim::Simulation sim{3};
  EventLoop loop{sim, "test"};
  loop.set_task_cost(sim::Duration::millis(2));
  std::vector<double> at;
  // Both ready at t=1ms, but the second must wait for the first's cost.
  loop.post(sim::Duration::millis(1), [&] { at.push_back(sim.now().ms_since_epoch_f()); });
  loop.post(sim::Duration::millis(1), [&] { at.push_back(sim.now().ms_since_epoch_f()); });
  sim.scheduler().run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 1.0);
  EXPECT_DOUBLE_EQ(at[1], 3.0);
}

TEST(EventLoop, IdleLoopDoesNotDelayLaterTasks) {
  sim::Simulation sim{4};
  EventLoop loop{sim, "test"};
  loop.set_task_cost(sim::Duration::millis(2));
  std::vector<double> at;
  loop.post(sim::Duration::millis(1), [&] { at.push_back(sim.now().ms_since_epoch_f()); });
  sim.scheduler().run();
  // Long after the first task finished: no queueing effect remains.
  sim.scheduler().schedule_after(sim::Duration::millis(50), [] {});
  sim.scheduler().run();
  loop.post(sim::Duration::millis(1), [&] { at.push_back(sim.now().ms_since_epoch_f()); });
  sim.scheduler().run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[1], 52.0);
}

TEST(EventLoop, CountsTasks) {
  sim::Simulation sim{5};
  EventLoop loop{sim, "test"};
  for (int i = 0; i < 4; ++i) loop.post(sim::Duration::zero(), [] {});
  sim.scheduler().run();
  EXPECT_EQ(loop.tasks_run(), 4u);
}

TEST(EventLoop, FifoOrderAmongQueuedTasks) {
  sim::Simulation sim{6};
  EventLoop loop{sim, "test"};
  loop.set_task_cost(sim::Duration::millis(1));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.post(sim::Duration::micros(10), [&order, i] { order.push_back(i); });
  }
  sim.scheduler().run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace bnm::browser
