#include <gtest/gtest.h>

#include "core/appraisal.h"

namespace bnm::core {
namespace {

using browser::BrowserId;
using browser::OsId;

OverheadSeries synthetic_series(methods::ProbeKind kind, const char* label,
                                std::vector<std::pair<double, double>> d1d2) {
  OverheadSeries s;
  s.config.kind = kind;
  s.case_label = label;
  s.method_name = probe_kind_name(kind);
  for (const auto& [d1, d2] : d1d2) {
    OverheadSample sample;
    sample.d1_ms = d1;
    sample.d2_ms = d2;
    s.samples.push_back(sample);
  }
  return s;
}

TEST(Appraisal, AppraiseMethodComputesAxes) {
  // Two cases: medians 2 and 6 -> abs-median median 4, spread 4.
  std::vector<OverheadSeries> per_case;
  per_case.push_back(synthetic_series(methods::ProbeKind::kXhrGet, "A",
                                      {{0, 1}, {0, 2}, {0, 3}}));
  per_case.push_back(synthetic_series(methods::ProbeKind::kXhrGet, "B",
                                      {{0, 5}, {0, 6}, {0, 7}}));
  const auto a = appraise_method(methods::ProbeKind::kXhrGet, per_case);
  EXPECT_DOUBLE_EQ(a.median_abs_overhead_ms, 4.0);
  EXPECT_DOUBLE_EQ(a.worst_case_median_ms, 6.0);
  EXPECT_DOUBLE_EQ(a.cross_case_spread_ms, 4.0);
  EXPECT_DOUBLE_EQ(a.mean_iqr_ms, 1.0);
  EXPECT_GT(a.score(), 0.0);
}

TEST(Appraisal, NegativeMediansUseAbsoluteTrueness) {
  std::vector<OverheadSeries> per_case;
  per_case.push_back(synthetic_series(methods::ProbeKind::kJavaSocket, "A",
                                      {{0, -3}, {0, -3}, {0, -3}}));
  const auto a = appraise_method(methods::ProbeKind::kJavaSocket, per_case);
  EXPECT_DOUBLE_EQ(a.median_abs_overhead_ms, 3.0);
}

TEST(Appraisal, KsConsistencyDistinguishesPlatformDependence) {
  // Two cases with identical distributions -> high p; a shifted third
  // case drags the min pairwise p to ~0.
  auto series_at = [](double center) {
    std::vector<std::pair<double, double>> samples;
    for (int i = 0; i < 40; ++i) {
      samples.emplace_back(0.0, center + 0.01 * i);
    }
    return samples;
  };
  std::vector<OverheadSeries> consistent;
  consistent.push_back(
      synthetic_series(methods::ProbeKind::kDom, "A", series_at(2.0)));
  consistent.push_back(
      synthetic_series(methods::ProbeKind::kDom, "B", series_at(2.0)));
  EXPECT_GT(appraise_method(methods::ProbeKind::kDom, consistent)
                .min_pairwise_ks_p,
            0.5);

  consistent.push_back(
      synthetic_series(methods::ProbeKind::kDom, "C", series_at(60.0)));
  EXPECT_LT(appraise_method(methods::ProbeKind::kDom, consistent)
                .min_pairwise_ks_p,
            0.001);
}

TEST(Appraisal, EmptySeriesHandled) {
  const auto a = appraise_method(methods::ProbeKind::kDom, {});
  EXPECT_EQ(a.method_name, "DOM");
  EXPECT_DOUBLE_EQ(a.score(), 0.0);
}

TEST(Appraisal, RankOrdersByScore) {
  std::map<methods::ProbeKind, std::vector<OverheadSeries>> results;
  results[methods::ProbeKind::kWebSocket].push_back(synthetic_series(
      methods::ProbeKind::kWebSocket, "A", {{0, 0.2}, {0, 0.3}, {0, 0.25}}));
  results[methods::ProbeKind::kFlashGet].push_back(synthetic_series(
      methods::ProbeKind::kFlashGet, "A", {{0, 40}, {0, 80}, {0, 60}}));
  results[methods::ProbeKind::kDom].push_back(synthetic_series(
      methods::ProbeKind::kDom, "A", {{0, 2}, {0, 3}, {0, 2.5}}));
  const auto ranked = rank_methods(results);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].kind, methods::ProbeKind::kWebSocket);
  EXPECT_EQ(ranked[1].kind, methods::ProbeKind::kDom);
  EXPECT_EQ(ranked[2].kind, methods::ProbeKind::kFlashGet);
}

TEST(Recommend, JavaSocketWhenPluginsAndNanotime) {
  Platform p;
  p.plugins_available = true;
  p.can_use_nanotime = true;
  const auto r = recommend(p);
  EXPECT_EQ(r.method, methods::ProbeKind::kJavaSocket);
  bool warns_about_date = false;
  for (const auto& c : r.cautions) {
    if (c.find("Date.getTime") != std::string::npos) warns_about_date = true;
  }
  EXPECT_TRUE(warns_about_date);
}

TEST(Recommend, WebSocketWithoutPlugins) {
  Platform p;
  p.plugins_available = false;
  p.websocket_available = true;
  EXPECT_EQ(recommend(p).method, methods::ProbeKind::kWebSocket);
}

TEST(Recommend, DomAsLastResort) {
  Platform p;
  p.plugins_available = false;
  p.websocket_available = false;
  EXPECT_EQ(recommend(p).method, methods::ProbeKind::kDom);
}

TEST(Recommend, PreferredBrowserPerOs) {
  Platform w;
  w.os = OsId::kWindows7;
  EXPECT_EQ(recommend(w).preferred_browser, BrowserId::kFirefox);
  Platform u;
  u.os = OsId::kUbuntu;
  EXPECT_EQ(recommend(u).preferred_browser, BrowserId::kChrome);
}

TEST(Recommend, AlwaysWarnsAgainstFlashHttp) {
  for (bool plugins : {true, false}) {
    Platform p;
    p.plugins_available = plugins;
    bool warns = false;
    for (const auto& c : recommend(p).cautions) {
      if (c.find("Flash GET/POST") != std::string::npos) warns = true;
    }
    EXPECT_TRUE(warns);
  }
}

}  // namespace
}  // namespace bnm::core
