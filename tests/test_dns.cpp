#include <gtest/gtest.h>

#include "net/dns.h"
#include "net_fixture.h"

namespace bnm::net {
namespace {

using test::TwoHostFixture;

// ------------------------------------------------------------- wire format

TEST(DnsMessageTest, QueryRoundTrip) {
  DnsMessage q;
  q.id = 0x1234;
  q.qname = "server.bnm.test";
  const auto decoded = DnsMessage::decode(q.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 0x1234);
  EXPECT_EQ(decoded->qname, "server.bnm.test");
  EXPECT_FALSE(decoded->is_response);
  EXPECT_FALSE(decoded->answer.has_value());
}

TEST(DnsMessageTest, ResponseRoundTrip) {
  DnsMessage r;
  r.id = 7;
  r.qname = "a.b";
  r.is_response = true;
  r.answer = IpAddress{10, 0, 0, 2};
  r.ttl_seconds = 300;
  const auto decoded = DnsMessage::decode(r.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_response);
  ASSERT_TRUE(decoded->answer.has_value());
  EXPECT_EQ(decoded->answer->to_string(), "10.0.0.2");
  EXPECT_EQ(decoded->ttl_seconds, 300u);
  EXPECT_EQ(decoded->rcode, 0);
}

TEST(DnsMessageTest, NxdomainRoundTrip) {
  DnsMessage r;
  r.qname = "missing.test";
  r.is_response = true;
  r.rcode = 3;
  const auto decoded = DnsMessage::decode(r.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->rcode, 3);
  EXPECT_FALSE(decoded->answer.has_value());
}

TEST(DnsMessageTest, RejectsGarbage) {
  EXPECT_FALSE(DnsMessage::decode({}).has_value());
  EXPECT_FALSE(DnsMessage::decode(std::vector<std::uint8_t>{1, 2, 3}).has_value());
  // Oversized label (64) is invalid.
  DnsMessage q;
  q.qname = std::string(64, 'x');
  EXPECT_TRUE(q.encode().empty());
}

TEST(DnsMessageTest, HeaderFlagBits) {
  DnsMessage q;
  q.qname = "x.y";
  const auto wire = q.encode();
  // QR bit clear on queries, RD set.
  EXPECT_EQ(wire[2] & 0x80, 0);
  EXPECT_EQ(wire[2] & 0x01, 0x01);
  DnsMessage r = q;
  r.is_response = true;
  const auto rwire = r.encode();
  EXPECT_EQ(rwire[2] & 0x80, 0x80);
}

// ---------------------------------------------------------- server/resolver

class DnsFixture : public TwoHostFixture {
 protected:
  void SetUp() override {
    build();
    dns_server = std::make_unique<DnsServer>(*server, 53);
    dns_server->add_record("server.bnm.test", IpAddress{10, 0, 0, 2});
    resolver = std::make_unique<DnsResolver>(*client, server_ep(53));
  }

  std::unique_ptr<DnsServer> dns_server;
  std::unique_ptr<DnsResolver> resolver;
};

TEST_F(DnsFixture, ResolvesKnownName) {
  std::optional<IpAddress> got;
  resolver->resolve("server.bnm.test", [&](std::optional<IpAddress> a) {
    got = a;
  });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->to_string(), "10.0.0.2");
  EXPECT_EQ(resolver->queries_sent(), 1u);
  EXPECT_EQ(dns_server->queries_served(), 1u);
}

TEST_F(DnsFixture, UnknownNameNxdomain) {
  bool called = false;
  std::optional<IpAddress> got = IpAddress{1, 1, 1, 1};
  resolver->resolve("nope.bnm.test", [&](std::optional<IpAddress> a) {
    called = true;
    got = a;
  });
  run_all();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(resolver->cached("nope.bnm.test"));
}

TEST_F(DnsFixture, SecondLookupServedFromCache) {
  resolver->resolve("server.bnm.test", [](std::optional<IpAddress>) {});
  run_all();
  EXPECT_TRUE(resolver->cached("server.bnm.test"));
  const auto wire_queries = resolver->queries_sent();

  std::optional<IpAddress> got;
  resolver->resolve("server.bnm.test", [&](std::optional<IpAddress> a) {
    got = a;
  });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(resolver->queries_sent(), wire_queries);  // no new packet
  EXPECT_EQ(resolver->cache_hits(), 1u);
}

TEST_F(DnsFixture, CacheExpiresAfterTtl) {
  dns_server->add_record("short.bnm.test", IpAddress{10, 0, 0, 9});
  resolver->resolve("short.bnm.test", [](std::optional<IpAddress>) {});
  run_all();
  EXPECT_TRUE(resolver->cached("short.bnm.test"));
  // Default TTL is 60 s; advance past it.
  run_for(sim::Duration::seconds(61));
  EXPECT_FALSE(resolver->cached("short.bnm.test"));
}

TEST_F(DnsFixture, FlushCacheForcesRequery) {
  resolver->resolve("server.bnm.test", [](std::optional<IpAddress>) {});
  run_all();
  resolver->flush_cache();
  resolver->resolve("server.bnm.test", [](std::optional<IpAddress>) {});
  run_all();
  EXPECT_EQ(resolver->queries_sent(), 2u);
}

TEST_F(DnsFixture, LookupTimesOutWhenServerUnreachable) {
  DnsResolver lost{*client, Endpoint{IpAddress{10, 0, 0, 99}, 53}};
  lost.set_timeout(sim::Duration::millis(500));
  bool called = false;
  std::optional<IpAddress> got = IpAddress{1, 1, 1, 1};
  lost.resolve("server.bnm.test", [&](std::optional<IpAddress> a) {
    called = true;
    got = a;
  });
  run_for(sim::Duration::seconds(2));
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

TEST_F(DnsFixture, LookupCostsOneNetworkRoundTrip) {
  const sim::TimePoint t0 = sim->now();
  sim::TimePoint done;
  resolver->resolve("server.bnm.test", [&](std::optional<IpAddress>) {
    done = sim->now();
  });
  run_all();
  // No netem here: sub-millisecond LAN round trip.
  EXPECT_LT(done - t0, sim::Duration::millis(2));
  EXPECT_GT(done - t0, sim::Duration::micros(30));
}

}  // namespace
}  // namespace bnm::net
