// Kernel allocation contract: in steady state (pool primed, calendar
// vectors at capacity), schedule_after / post_after / dispatch perform zero
// heap allocations. Lives in the bnm_kernel_tests binary (ctest label
// `kernel`) because it replaces the global operator new, which must not
// perturb the tier1 executable.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/scheduler.h"

static std::atomic<std::uint64_t> g_allocs{0};

// GCC pairs our replaced operator new (malloc-backed) with std::free and
// flags a mismatch; the pairing is intentional and correct for a full
// global replacement, so silence the false positive for this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using bnm::sim::Duration;
using bnm::sim::Scheduler;

// One round of the workload both phases share: a bucket's worth of
// cancellable events, a couple of cancels, then drain. Walking this for
// more than kBuckets rounds pushes the clock through a full ring rotation,
// so every bucket slot (and the capacity-circulating vectors behind them)
// gets primed.
void round(Scheduler& s) {
  bnm::sim::EventHandle h0, h7;
  for (int i = 0; i < 32; ++i) {
    auto h = s.schedule_after(Duration::micros(2 * i), [] {});
    if (i == 0) h0 = h;
    if (i == 7) h7 = h;
  }
  h0.cancel();
  h7.cancel();
  s.run();
}

TEST(KernelAlloc, ScheduleAfterSteadyStateDoesNotAllocate) {
  Scheduler s;
  // Priming: rotate through the whole ring (kBuckets slots) plus slack so
  // the control-block pool, free list, and every bucket vector reach
  // steady-state capacity — and the metrics TLS shards exist.
  for (std::size_t i = 0; i < Scheduler::kBuckets + 64; ++i) round(s);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < Scheduler::kBuckets; ++i) round(s);
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule/cancel/dispatch hit the heap "
      << (after - before) << " times";
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(KernelAlloc, ControlBlocksRecycleThroughThePool) {
  Scheduler s;
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < 100; ++i) s.schedule_after(Duration::micros(i), [] {});
    s.run();
  }
  // All blocks returned to the free list, none leaked.
  const std::size_t parked = s.pooled_control_blocks();
  EXPECT_GE(parked, 100u);
  for (int i = 0; i < 100; ++i) s.schedule_after(Duration::micros(i), [] {});
  // Re-acquisition drains the free list instead of growing the pool.
  EXPECT_EQ(s.pooled_control_blocks(), parked - 100);
  s.run();
  EXPECT_EQ(s.pooled_control_blocks(), parked);
}

TEST(KernelAlloc, StaleHandleCannotCancelRecycledSlot) {
  Scheduler s;
  auto h = s.schedule_after(Duration::micros(1), [] {});
  s.run();
  // The slot is recycled into a new event; the stale handle must neither
  // report it pending nor be able to cancel it.
  bool ran = false;
  s.schedule_after(Duration::micros(1), [&] { ran = true; });
  EXPECT_FALSE(h.pending());
  h.cancel();
  s.run();
  EXPECT_TRUE(ran);
}

}  // namespace
