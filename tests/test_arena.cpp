// Arena contract tests: alignment, chunk spill, reset()-and-reuse, the
// thread-local scope machinery, per-thread isolation under the matrix
// runner, and — the load-bearing guarantee — bit-identical experiment
// results with arenas on and off.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/parallel_runner.h"
#include "sim/arena.h"

namespace bnm::sim {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, RespectsRequestedAlignment) {
  Arena arena;
  // Interleave odd sizes so the bump pointer lands misaligned between
  // requests; every allocation must still come back aligned.
  for (const std::size_t align : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8},
                                  std::size_t{16}, std::size_t{64}}) {
    arena.allocate(3, 1);  // deliberately skew the bump pointer
    void* p = arena.allocate(align * 2, align);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(aligned_to(p, align)) << "align=" << align;
  }
  EXPECT_GT(arena.allocations(), 0u);
  EXPECT_GT(arena.bytes_served(), 0u);
}

TEST(Arena, SpillsIntoNewChunksAndServesOversizedRequests) {
  Arena arena{/*chunk_bytes=*/1024};
  EXPECT_EQ(arena.chunk_count(), 0u);  // lazy: no chunk until first use

  // Fill past the first chunk; the arena must grow, never fail.
  std::vector<unsigned char*> blocks;
  for (int i = 0; i < 8; ++i) {
    auto* p = static_cast<unsigned char*>(arena.allocate(512, 16));
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xA5 + i, 512);  // every block must be writable
    blocks.push_back(p);
  }
  EXPECT_GE(arena.chunk_count(), 2u);

  // A request bigger than the chunk size gets its own dedicated chunk.
  auto* big = static_cast<unsigned char*>(arena.allocate(16 * 1024, 64));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 16 * 1024);

  // Earlier blocks survived the growth (chunks never move).
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i][0], static_cast<unsigned char>(0xA5 + i));
    EXPECT_EQ(blocks[i][511], static_cast<unsigned char>(0xA5 + i));
  }
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_in_use());
  EXPECT_GE(arena.peak_bytes(), 16u * 1024u);
}

TEST(Arena, ResetRetainsChunksForReuse) {
  Arena arena{/*chunk_bytes=*/1024};
  for (int i = 0; i < 6; ++i) arena.allocate(512, 8);
  const std::size_t chunks_before = arena.chunk_count();
  const std::size_t reserved_before = arena.bytes_reserved();
  const std::uint64_t allocs_before = arena.allocations();
  ASSERT_GE(chunks_before, 2u);

  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks_before);      // nothing freed
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);  // capacity retained

  // The next epoch is served from the retained chunks: same footprint.
  for (int i = 0; i < 6; ++i) arena.allocate(512, 8);
  EXPECT_EQ(arena.chunk_count(), chunks_before);
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);
  EXPECT_EQ(arena.allocations(), allocs_before + 6);  // lifetime counter
}

TEST(Arena, ScopeInstallsRestoresAndNests) {
  ASSERT_EQ(Arena::current(), nullptr);  // tests run with no ambient scope
  Arena outer;
  {
    ArenaScope s1{outer};
    EXPECT_EQ(Arena::current(), &outer);
    {
      // nullptr scope = keep whatever is installed (the no-op form).
      ArenaScope s2{static_cast<Arena*>(nullptr)};
      EXPECT_EQ(Arena::current(), &outer);
    }
    EXPECT_EQ(Arena::current(), &outer);
    Arena inner;
    {
      ArenaScope s3{inner};
      EXPECT_EQ(Arena::current(), &inner);
    }
    EXPECT_EQ(Arena::current(), &outer);
  }
  EXPECT_EQ(Arena::current(), nullptr);
}

TEST(Arena, DisableSwitchHidesCurrentArena) {
  Arena arena;
  ArenaScope scope{arena};
  ASSERT_EQ(Arena::current(), &arena);
  Arena::set_enabled(false);
  EXPECT_EQ(Arena::current(), nullptr);  // allocation sites fall back to heap
  Arena::set_enabled(true);
  EXPECT_EQ(Arena::current(), &arena);
}

TEST(Arena, ThreadLocalScopesAreIsolated) {
  Arena main_arena;
  ArenaScope scope{main_arena};
  Arena* seen_on_thread = &main_arena;  // sentinel: must be overwritten
  std::thread t{[&] {
    // A fresh thread starts with no scope, regardless of the main thread's.
    seen_on_thread = Arena::current();
    Arena mine;
    ArenaScope s{mine};
    mine.allocate(64, 8);
    EXPECT_EQ(Arena::current(), &mine);
    EXPECT_EQ(mine.allocations(), 1u);
  }};
  t.join();
  EXPECT_EQ(seen_on_thread, nullptr);
  EXPECT_EQ(Arena::current(), &main_arena);  // untouched by the thread
  EXPECT_EQ(main_arena.allocations(), 0u);
}

TEST(ArenaAllocator, ServesFromArenaAndFallsBackToHeap) {
  Arena arena;
  {
    ArenaScope scope{arena};
    std::vector<int, ArenaAllocator<int>> v;
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_GT(arena.allocations(), 0u);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  }  // vector dies before the arena: deallocate() was a no-op throughout

  // No scope: the allocator degrades to plain heap allocation.
  ASSERT_EQ(Arena::current(), nullptr);
  std::vector<int, ArenaAllocator<int>> heap_backed;
  for (int i = 0; i < 1000; ++i) heap_backed.push_back(i);
  EXPECT_EQ(heap_backed.size(), 1000u);
  EXPECT_EQ(heap_backed.get_allocator().arena(), nullptr);
}

// --- End-to-end guarantees through the experiment pipeline ---

std::vector<core::ExperimentConfig> small_matrix(int runs = 3) {
  using B = browser::BrowserId;
  using O = browser::OsId;
  using K = methods::ProbeKind;
  struct Cell {
    B b;
    O os;
    K k;
  };
  const Cell cells[] = {
      {B::kChrome, O::kUbuntu, K::kXhrGet},
      {B::kChrome, O::kUbuntu, K::kWebSocket},
      {B::kFirefox, O::kWindows7, K::kDom},
      {B::kOpera, O::kUbuntu, K::kFlashGet},
      {B::kSafari, O::kWindows7, K::kJavaSocket},
      {B::kFirefox, O::kUbuntu, K::kXhrPost},
  };
  std::vector<core::ExperimentConfig> out;
  for (const auto& c : cells) {
    core::ExperimentConfig cfg;
    cfg.browser = c.b;
    cfg.os = c.os;
    cfg.kind = c.k;
    cfg.runs = runs;
    out.push_back(cfg);
  }
  return out;
}

void expect_identical(const core::OverheadSeries& a,
                      const core::OverheadSeries& b) {
  EXPECT_EQ(a.case_label, b.case_label);
  EXPECT_EQ(a.method_name, b.method_name);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.first_error, b.first_error);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const core::OverheadSample& x = a.samples[i];
    const core::OverheadSample& y = b.samples[i];
    // Bitwise equality: the arena must be observationally invisible.
    EXPECT_EQ(x.d1_ms, y.d1_ms);
    EXPECT_EQ(x.d2_ms, y.d2_ms);
    EXPECT_EQ(x.browser_rtt1_ms, y.browser_rtt1_ms);
    EXPECT_EQ(x.browser_rtt2_ms, y.browser_rtt2_ms);
    EXPECT_EQ(x.net_rtt1_ms, y.net_rtt1_ms);
    EXPECT_EQ(x.net_rtt2_ms, y.net_rtt2_ms);
    EXPECT_EQ(x.connections_opened1, y.connections_opened1);
    EXPECT_EQ(x.connections_opened2, y.connections_opened2);
  }
}

TEST(ArenaIdentity, ExperimentResultsAreBitIdenticalArenaOnAndOff) {
  const auto cells = small_matrix();

  ASSERT_TRUE(Arena::enabled());
  const auto with_arena = core::run_matrix(cells, /*jobs=*/1);

  Arena::set_enabled(false);
  const auto without_arena = core::run_matrix(cells, /*jobs=*/1);
  Arena::set_enabled(true);

  ASSERT_EQ(with_arena.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(with_arena[i], without_arena[i]);
  }
}

TEST(ArenaIdentity, PerWorkerArenasMatchSerialUnderRunMatrix) {
  // jobs=3 gives each pool worker its own thread-local arena; results must
  // still match the single-arena serial pass cell for cell.
  const auto cells = small_matrix();
  const auto serial = core::run_matrix(cells, /*jobs=*/1);
  const auto parallel = core::run_matrix(cells, /*jobs=*/3);
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace bnm::sim
