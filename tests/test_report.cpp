#include <gtest/gtest.h>

#include "report/boxplot_render.h"
#include "report/cdf_render.h"
#include "report/table.h"

namespace bnm::report {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name  22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(TextTableTest, RuleInsertedBetweenGroups) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // Two rules total: one under the header, one between rows.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("-\n", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TextTableTest, MarkdownFormat) {
  TextTable t({"h1", "h2"});
  t.add_row({"a", "b"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
}

TEST(TextTableTest, CsvQuoting) {
  TextTable t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "x"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TextTableTest, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::fmt_ci(2.5, 0.25), "2.50 +- 0.25");
}

TEST(BoxPlotRendererTest, MarksAllElements) {
  stats::BoxStats b;
  b.n = 50;
  b.q1 = 2;
  b.median = 5;
  b.q3 = 8;
  b.whisker_lo = 0;
  b.whisker_hi = 10;
  b.outliers_hi = {20};
  BoxPlotRenderer r;
  const std::string out = r.render({{"case A d1", b}});
  EXPECT_NE(out.find("case A d1"), std::string::npos);
  EXPECT_NE(out.find('M'), std::string::npos);
  EXPECT_NE(out.find('['), std::string::npos);
  EXPECT_NE(out.find(']'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("(ms)"), std::string::npos);
}

TEST(BoxPlotRendererTest, SharedScaleAcrossRows) {
  stats::BoxStats narrow;
  narrow.q1 = 1;
  narrow.median = 2;
  narrow.q3 = 3;
  narrow.whisker_lo = 0;
  narrow.whisker_hi = 4;
  stats::BoxStats wide = narrow;
  wide.whisker_hi = 100;
  wide.q3 = 60;
  BoxPlotRenderer r{BoxPlotRenderer::Options{40, true, true}};
  const std::string out = r.render({{"narrow", narrow}, {"wide", wide}});
  // The narrow row's glyphs crowd the left edge on the shared scale.
  const auto narrow_line = out.substr(0, out.find('\n'));
  const auto m = narrow_line.find('M');
  EXPECT_LT(m, narrow_line.size() / 2);
}

TEST(BoxPlotRendererTest, EmptyInput) {
  BoxPlotRenderer r;
  EXPECT_EQ(r.render({}), "(no data)\n");
}

TEST(CdfRendererTest, PlotsMonotoneCurveWithLegend) {
  stats::EmpiricalCdf cdf{{1, 2, 3, 4, 5}};
  CdfRenderer r;
  const std::string out = r.render({{"series-x", cdf}});
  EXPECT_NE(out.find("series-x"), std::string::npos);
  EXPECT_NE(out.find("1.00 |"), std::string::npos);
  EXPECT_NE(out.find("0.00 |"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(CdfRendererTest, MultipleSeriesDistinctMarks) {
  stats::EmpiricalCdf a{{1, 2, 3}};
  stats::EmpiricalCdf b{{10, 20, 30}};
  CdfRenderer r;
  const std::string out = r.render({{"a", a}, {"b", b}});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("*=a"), std::string::npos);
  EXPECT_NE(out.find("#=b"), std::string::npos);
}

TEST(CdfRendererTest, ExplicitRangeHonored) {
  stats::EmpiricalCdf cdf{{5}};
  CdfRenderer r{CdfRenderer::Options{40, 10, -16, 21}};
  const std::string out = r.render({{"x", cdf}});
  EXPECT_NE(out.find("-16.0"), std::string::npos);
  EXPECT_NE(out.find("21.0"), std::string::npos);
}

TEST(CdfRendererTest, EmptyInput) {
  CdfRenderer r;
  EXPECT_EQ(r.render({}), "(no data)\n");
}

}  // namespace
}  // namespace bnm::report
