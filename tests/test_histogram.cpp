#include <gtest/gtest.h>

#include <algorithm>

#include "stats/histogram.h"

namespace bnm::stats {
namespace {

TEST(Histogram, BinsValues) {
  Histogram h{0, 10, 10};
  h.add(0.5);
  h.add(0.9);
  h.add(5.5);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h{0, 10, 5};
  h.add(-1);
  h.add(10.0);  // hi edge is exclusive
  h.add(99);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, LowEdgeInclusive) {
  Histogram h{0, 10, 5};
  h.add(0.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, BinEdges) {
  Histogram h{0, 20, 4};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 15.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, ModeCenter) {
  Histogram h{0, 10, 10};
  for (int i = 0; i < 5; ++i) h.add(7.2);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.mode_center(), 7.5);
}

TEST(Histogram, AddAll) {
  Histogram h{0, 10, 2};
  h.add_all({1, 2, 6, 7, 8});
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 3u);
}

TEST(Histogram, RenderContainsCountsAndBars) {
  Histogram h{0, 2, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string r = h.render(10);
  EXPECT_NE(r.find('#'), std::string::npos);
  EXPECT_NE(r.find("2"), std::string::npos);
  // Two bins -> at least two lines.
  EXPECT_GE(std::count(r.begin(), r.end(), '\n'), 2);
}

TEST(Histogram, RenderReportsOverflow) {
  Histogram h{0, 1, 1};
  h.add(5);
  EXPECT_NE(h.render().find("overflow: 1"), std::string::npos);
}

}  // namespace
}  // namespace bnm::stats
