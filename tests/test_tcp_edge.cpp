// TCP edge paths: simultaneous close, out-of-order segment reassembly
// under reordering netem, delayed-ACK behaviour, and server-side HTTP
// pipelining on one connection.
#include <gtest/gtest.h>

#include "core/testbed.h"
#include "http/client.h"
#include "net_fixture.h"

namespace bnm::net {
namespace {

using test::TwoHostFixture;

class TcpEdge : public TwoHostFixture {};

TEST_F(TcpEdge, SimultaneousCloseReachesClosedOnBothSides) {
  std::shared_ptr<TcpConnection> server_conn;
  server->tcp_listen(9000, [&](std::shared_ptr<TcpConnection> conn) {
    server_conn = conn;
  });
  std::shared_ptr<TcpConnection> client_conn;
  TcpCallbacks cbs;
  client_conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  ASSERT_TRUE(server_conn && client_conn);
  ASSERT_TRUE(client_conn->established());

  // Close both ends in the same instant: FINs cross in flight.
  client_conn->close();
  server_conn->close();
  run_all();
  EXPECT_EQ(client_conn->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(server_conn->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(client->open_connections(), 0u);
  EXPECT_EQ(server->open_connections(), 0u);
}

TEST_F(TcpEdge, DelayedAckFiresForUnansweredData) {
  // Server that never replies: the client's data must still get ACKed by
  // the delayed-ACK timer (500 us default), not retransmitted.
  std::shared_ptr<TcpConnection> server_conn;
  server->tcp_listen(9000, [&](std::shared_ptr<TcpConnection> conn) {
    server_conn = conn;
  });
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_connect = [&] { conn->send(std::string{"silent"}); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_for(sim::Duration::millis(100));
  EXPECT_EQ(conn->retransmissions(), 0u);
  // A pure ACK for the data appeared at the client.
  bool pure_ack_seen = false;
  for (std::size_t i = 0; i < client->capture().size(); ++i) {
    const auto r = client->capture().at(i);
    if (r.direction == CaptureDirection::kInbound && r.packet.is_pure_ack() &&
        r.packet.ack > 1) {
      pure_ack_seen = true;
    }
  }
  EXPECT_TRUE(pure_ack_seen);
}

TEST(TcpReordering, ReassemblyDeliversInOrderUnderReorderingNetem) {
  // Server egress netem with reordering: TCP segments of a bulk response
  // arrive out of order; the receiver's reassembly must hand the
  // application a byte-exact, in-order stream.
  core::Testbed::Config cfg;
  cfg.server_delay = sim::Duration::millis(10);
  cfg.server_jitter = sim::Duration::millis(15);
  cfg.allow_reorder = true;
  core::Testbed tb{cfg};

  http::HttpClient client{tb.client()};
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/payload?size=200000";
  std::optional<http::HttpResponse> got;
  client.request(tb.http_endpoint(), req,
                 [&](http::HttpResponse r, http::HttpClient::TransferInfo) {
                   got = std::move(r);
                 });
  tb.sim().scheduler().run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  ASSERT_EQ(got->body.size(), 200000u);
  EXPECT_EQ(got->body, std::string(200000, 'x'));

  // Sanity: the reordering actually happened on the wire (some inbound
  // data segment has a smaller seq than its predecessor).
  bool reordered = false;
  std::uint32_t prev_seq = 0;
  bool first = true;
  for (std::size_t i = 0; i < tb.client().capture().size(); ++i) {
    const auto r = tb.client().capture().at(i);
    if (r.direction != CaptureDirection::kInbound || !r.packet.carries_data()) {
      continue;
    }
    if (!first && r.packet.seq < prev_seq) reordered = true;
    prev_seq = r.packet.seq;
    first = false;
  }
  EXPECT_TRUE(reordered);
}

TEST(HttpPipelining, ServerAnswersBackToBackRequestsInOrder) {
  // Two requests written into one connection before the first response:
  // the server must answer both, in order, on the same connection.
  core::Testbed::Config cfg;
  core::Testbed tb{cfg};

  std::string received;
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_connect = [&] {
    http::HttpRequest r1;
    r1.method = "GET";
    r1.target = "/echo";
    http::HttpRequest r2;
    r2.method = "GET";
    r2.target = "/payload?size=5";
    conn->send(r1.serialize() + r2.serialize());
  };
  cbs.on_data = [&](const Payload& d) {
    received += to_string(d);
  };
  conn = tb.client().tcp_connect(tb.http_endpoint(), std::move(cbs));
  tb.sim().scheduler().run();

  http::ResponseParser parser;
  parser.feed(received);
  const auto first = parser.take();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->body, "pong");
  const auto second = parser.take();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->body, "xxxxx");
}

TEST(HttpBadRequest, MalformedInputGets400AndClose) {
  core::Testbed::Config cfg;
  core::Testbed tb{cfg};
  std::string received;
  bool closed = false;
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_connect = [&] { conn->send(std::string{"THIS IS NOT HTTP\r\n\r\n"}); };
  cbs.on_data = [&](const Payload& d) {
    received += to_string(d);
  };
  cbs.on_close = [&] { closed = true; };
  conn = tb.client().tcp_connect(tb.http_endpoint(), std::move(cbs));
  tb.sim().scheduler().run();
  EXPECT_NE(received.find("400"), std::string::npos);
  EXPECT_TRUE(closed);
}

}  // namespace
}  // namespace bnm::net
