#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "stats/descriptive.h"

namespace bnm::core {
namespace {

using browser::BrowserId;
using browser::OsId;

ExperimentConfig quick(methods::ProbeKind kind, BrowserId b, OsId os,
                       int runs = 10) {
  ExperimentConfig cfg;
  cfg.kind = kind;
  cfg.browser = b;
  cfg.os = os;
  cfg.runs = runs;
  return cfg;
}

TEST(Experiment, CollectsRequestedRuns) {
  const auto series = run_experiment(
      quick(methods::ProbeKind::kWebSocket, BrowserId::kChrome, OsId::kUbuntu));
  EXPECT_EQ(series.samples.size(), 10u);
  EXPECT_EQ(series.failures, 0);
  EXPECT_EQ(series.case_label, "C (U)");
  EXPECT_EQ(series.method_name, "WebSocket");
}

TEST(Experiment, NetworkRttTracksNetemDelay) {
  auto cfg = quick(methods::ProbeKind::kXhrGet, BrowserId::kChrome, OsId::kUbuntu);
  const auto series = run_experiment(cfg);
  for (const auto& s : series.samples) {
    EXPECT_GT(s.net_rtt1_ms, 50.0);
    EXPECT_LT(s.net_rtt1_ms, 51.5);
    EXPECT_GT(s.net_rtt2_ms, 50.0);
    EXPECT_LT(s.net_rtt2_ms, 51.5);
    EXPECT_DOUBLE_EQ(s.d1_ms, s.browser_rtt1_ms - s.net_rtt1_ms);
    EXPECT_DOUBLE_EQ(s.d2_ms, s.browser_rtt2_ms - s.net_rtt2_ms);
  }
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = run_experiment(
      quick(methods::ProbeKind::kDom, BrowserId::kFirefox, OsId::kWindows7, 5));
  const auto b = run_experiment(
      quick(methods::ProbeKind::kDom, BrowserId::kFirefox, OsId::kWindows7, 5));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].d1_ms, b.samples[i].d1_ms);
    EXPECT_DOUBLE_EQ(a.samples[i].d2_ms, b.samples[i].d2_ms);
  }
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto cfg = quick(methods::ProbeKind::kDom, BrowserId::kFirefox, OsId::kWindows7, 5);
  const auto a = run_experiment(cfg);
  cfg.seed = 4242;
  const auto b = run_experiment(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (std::fabs(a.samples[i].d1_ms - b.samples[i].d1_ms) > 1e-9) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Experiment, OperaFlashConnectionAccounting) {
  const auto get = run_experiment(
      quick(methods::ProbeKind::kFlashGet, BrowserId::kOpera, OsId::kWindows7));
  for (const auto& s : get.samples) {
    EXPECT_EQ(s.connections_opened1, 1);
    EXPECT_EQ(s.connections_opened2, 0);
  }
  const auto post = run_experiment(
      quick(methods::ProbeKind::kFlashPost, BrowserId::kOpera, OsId::kWindows7));
  for (const auto& s : post.samples) {
    EXPECT_EQ(s.connections_opened1, 1);
    EXPECT_EQ(s.connections_opened2, 1);
  }
}

TEST(Experiment, ChromeFlashReusesPreparationConnection) {
  const auto series = run_experiment(
      quick(methods::ProbeKind::kFlashGet, BrowserId::kChrome, OsId::kWindows7));
  for (const auto& s : series.samples) {
    EXPECT_EQ(s.connections_opened1, 0);
    EXPECT_EQ(s.connections_opened2, 0);
  }
}

TEST(Experiment, UnsupportedCaseReportsFailures) {
  const auto series = run_experiment(
      quick(methods::ProbeKind::kWebSocket, BrowserId::kIe, OsId::kWindows7, 3));
  EXPECT_TRUE(series.samples.empty());
  EXPECT_EQ(series.failures, 3);
  EXPECT_FALSE(series.first_error.empty());
}

TEST(Experiment, AppletviewerLabelled) {
  auto cfg = quick(methods::ProbeKind::kJavaSocket, BrowserId::kChrome,
                   OsId::kWindows7, 5);
  cfg.java_via_appletviewer = true;
  const auto series = run_experiment(cfg);
  EXPECT_EQ(series.case_label, "appletviewer (W)");
  EXPECT_EQ(series.samples.size(), 5u);
}

TEST(Experiment, SeriesStatisticsAccessors) {
  const auto series = run_experiment(
      quick(methods::ProbeKind::kWebSocket, BrowserId::kChrome, OsId::kUbuntu, 20));
  EXPECT_EQ(series.d1().size(), 20u);
  EXPECT_EQ(series.d2().size(), 20u);
  const auto box = series.d2_box();
  EXPECT_LE(box.q1, box.median);
  const auto ci = series.d2_ci();
  EXPECT_GE(ci.half_width, 0.0);
}

TEST(Experiment, NanotimeShrinksJavaSpread) {
  auto cfg = quick(methods::ProbeKind::kJavaSocket, BrowserId::kFirefox,
                   OsId::kWindows7, 30);
  const auto date_series = run_experiment(cfg);
  cfg.java_use_nanotime = true;
  const auto nano_series = run_experiment(cfg);
  const double date_spread =
      stats::max(date_series.d2()) - stats::min(date_series.d2());
  const double nano_spread =
      stats::max(nano_series.d2()) - stats::min(nano_series.d2());
  // Date.getTime quantization spreads over ~16 ms; nanoTime stays tight.
  EXPECT_LT(nano_spread, 1.0);
  EXPECT_GT(date_spread, nano_spread);
}

TEST(Experiment, HttpOverheadExceedsSocketOverhead) {
  const auto xhr = run_experiment(
      quick(methods::ProbeKind::kXhrGet, BrowserId::kChrome, OsId::kUbuntu, 15));
  const auto ws = run_experiment(
      quick(methods::ProbeKind::kWebSocket, BrowserId::kChrome, OsId::kUbuntu, 15));
  EXPECT_GT(xhr.d2_box().median, ws.d2_box().median);
}

}  // namespace
}  // namespace bnm::core
