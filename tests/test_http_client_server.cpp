#include <gtest/gtest.h>

#include "http/client.h"
#include "http/server.h"
#include "net_fixture.h"

namespace bnm::http {
namespace {

using test::TwoHostFixture;

class HttpIntegration : public TwoHostFixture {
 protected:
  void SetUp() override {
    build();
    WebServer::Config wc;
    wc.port = 80;
    web = std::make_unique<WebServer>(*server, wc);
    http = std::make_unique<HttpClient>(*client);
  }

  HttpRequest get(const std::string& target) {
    HttpRequest r;
    r.method = "GET";
    r.target = target;
    return r;
  }

  std::unique_ptr<WebServer> web;
  std::unique_ptr<HttpClient> http;
};

TEST_F(HttpIntegration, GetEcho) {
  std::optional<HttpResponse> got;
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse r, HttpClient::TransferInfo) { got = r; });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "pong");
  EXPECT_EQ(got->headers.get("Server").value_or("").find("Apache"), 0u);
}

TEST_F(HttpIntegration, PostSinkEchoesSize) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/sink";
  req.body = "abcde";
  std::optional<HttpResponse> got;
  http->request(server_ep(80), req,
                [&](HttpResponse r, HttpClient::TransferInfo) { got = r; });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body, "got 5");
}

TEST_F(HttpIntegration, NotFoundAndMethodNotAllowed) {
  std::optional<int> s1, s2;
  http->request(server_ep(80), get("/nothing"),
                [&](HttpResponse r, HttpClient::TransferInfo) { s1 = r.status; });
  run_all();
  HttpRequest del;
  del.method = "DELETE";
  del.target = "/echo";
  http->request(server_ep(80), del,
                [&](HttpResponse r, HttpClient::TransferInfo) { s2 = r.status; });
  run_all();
  EXPECT_EQ(s1, 404);
  EXPECT_EQ(s2, 405);
}

TEST_F(HttpIntegration, PayloadSizeParameter) {
  std::optional<HttpResponse> got;
  http->request(server_ep(80), get("/payload?size=2048"),
                [&](HttpResponse r, HttpClient::TransferInfo) { got = r; });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body.size(), 2048u);
}

TEST_F(HttpIntegration, ContainerPageEmbedsMethod) {
  std::optional<HttpResponse> got;
  http->request(server_ep(80), get("/?method=WebSocket"),
                [&](HttpResponse r, HttpClient::TransferInfo) { got = r; });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(got->body.find("runMeasurement('WebSocket')"), std::string::npos);
  EXPECT_EQ(got->headers.get("Content-Type"), "text/html");
}

TEST_F(HttpIntegration, CrossDomainPolicyServed) {
  std::optional<HttpResponse> got;
  http->request(server_ep(80), get("/crossdomain.xml"),
                [&](HttpResponse r, HttpClient::TransferInfo) { got = r; });
  run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_NE(got->body.find("cross-domain-policy"), std::string::npos);
}

TEST_F(HttpIntegration, KeepAliveReusesConnection) {
  int done = 0;
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo info) {
                  ++done;
                  EXPECT_TRUE(info.opened_new_connection);
                });
  run_all();
  EXPECT_EQ(http->pooled_connections(server_ep(80)), 1u);
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo info) {
                  ++done;
                  EXPECT_FALSE(info.opened_new_connection);
                  EXPECT_EQ(info.handshake_cost(), sim::Duration::zero());
                });
  run_all();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(http->connections_opened(), 1u);
  EXPECT_EQ(web->connections_accepted(), 1u);
  EXPECT_EQ(web->requests_served(), 2u);
}

TEST_F(HttpIntegration, ForcedNewConnectionSkipsPool) {
  http->request(server_ep(80), get("/echo"),
                [](HttpResponse, HttpClient::TransferInfo) {});
  run_all();
  HttpClient::Options opts;
  opts.reuse_pooled = false;
  bool checked = false;
  http->request(server_ep(80), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo info) {
                  checked = true;
                  EXPECT_TRUE(info.opened_new_connection);
                  EXPECT_GT(info.handshake_cost(), sim::Duration::zero());
                },
                opts);
  run_all();
  EXPECT_TRUE(checked);
  EXPECT_EQ(http->connections_opened(), 2u);
  // Both connections end up pooled.
  EXPECT_EQ(http->pooled_connections(server_ep(80)), 2u);
}

TEST_F(HttpIntegration, ConnectionCloseHonored) {
  HttpRequest req = get("/echo");
  req.headers.set("Connection", "close");
  bool got = false;
  http->request(server_ep(80), req,
                [&](HttpResponse r, HttpClient::TransferInfo) {
                  got = true;
                  EXPECT_FALSE(r.wants_keep_alive());
                });
  run_all();
  EXPECT_TRUE(got);
  EXPECT_EQ(http->pooled_connections(server_ep(80)), 0u);
  // Full teardown on both hosts.
  EXPECT_EQ(client->open_connections(), 0u);
  EXPECT_EQ(server->open_connections(), 0u);
}

TEST_F(HttpIntegration, CloseAllTearsDownPool) {
  http->request(server_ep(80), get("/echo"),
                [](HttpResponse, HttpClient::TransferInfo) {});
  run_all();
  EXPECT_EQ(http->pooled_connections(server_ep(80)), 1u);
  http->close_all();
  run_all();
  EXPECT_EQ(http->pooled_connections(server_ep(80)), 0u);
  EXPECT_EQ(client->open_connections(), 0u);
}

TEST_F(HttpIntegration, ServerThinkTimeDelaysResponse) {
  WebServer::Config slow;
  slow.port = 81;
  slow.think_time = sim::Duration::millis(30);
  WebServer slow_server{*server, slow};
  const sim::TimePoint start = sim->now();
  sim::TimePoint done;
  http->request(server_ep(81), get("/echo"),
                [&](HttpResponse, HttpClient::TransferInfo) { done = sim->now(); });
  run_all();
  EXPECT_GE(done - start, sim::Duration::millis(30));
}

TEST_F(HttpIntegration, CustomRoute) {
  web->route("GET", "/version", [](const HttpRequest&) {
    return HttpResponse::make(200, "bnm/1.0");
  });
  std::optional<std::string> body;
  http->request(server_ep(80), get("/version"),
                [&](HttpResponse r, HttpClient::TransferInfo) { body = r.body; });
  run_all();
  EXPECT_EQ(body, "bnm/1.0");
}

TEST(WebServerStatics, ParseQuery) {
  const auto q = WebServer::parse_query("/payload?size=77&mode=fast&flag");
  EXPECT_EQ(q.at("size"), "77");
  EXPECT_EQ(q.at("mode"), "fast");
  EXPECT_EQ(q.at("flag"), "");
  EXPECT_TRUE(WebServer::parse_query("/plain").empty());
}

TEST(WebServerStatics, PathOf) {
  EXPECT_EQ(WebServer::path_of("/a/b?x=1"), "/a/b");
  EXPECT_EQ(WebServer::path_of("/a/b"), "/a/b");
}

}  // namespace
}  // namespace bnm::http
