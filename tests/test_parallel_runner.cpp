// The parallel matrix runner's contract: parallel output is byte-identical
// to serial for every cell, jobs=1 degenerates to a plain serial loop, and
// a throwing cell never wedges the pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "core/parallel_runner.h"

namespace bnm::core {
namespace {

// A mixed 12-cell matrix: HTTP + socket + plugin methods across browsers,
// OSes and variants, including an unsupported cell (IE has no WebSocket).
std::vector<ExperimentConfig> mixed_matrix(int runs = 3) {
  using B = browser::BrowserId;
  using O = browser::OsId;
  using K = methods::ProbeKind;
  struct Cell {
    B b;
    O os;
    K k;
    bool nanotime = false;
    bool appletviewer = false;
  };
  const Cell cells[] = {
      {B::kChrome, O::kUbuntu, K::kXhrGet},
      {B::kChrome, O::kUbuntu, K::kWebSocket},
      {B::kFirefox, O::kUbuntu, K::kDom},
      {B::kOpera, O::kUbuntu, K::kFlashGet},
      {B::kChrome, O::kWindows7, K::kJavaSocket},
      {B::kChrome, O::kWindows7, K::kJavaSocket, /*nanotime=*/true},
      {B::kChrome, O::kWindows7, K::kJavaSocket, false, /*appletviewer=*/true},
      {B::kFirefox, O::kWindows7, K::kXhrPost},
      {B::kIe, O::kWindows7, K::kWebSocket},  // unsupported: fails cleanly
      {B::kOpera, O::kWindows7, K::kFlashPost},
      {B::kSafari, O::kWindows7, K::kJavaUdp},
      {B::kSafari, O::kWindows7, K::kFlashSocket},
  };
  std::vector<ExperimentConfig> out;
  for (const auto& c : cells) {
    ExperimentConfig cfg;
    cfg.browser = c.b;
    cfg.os = c.os;
    cfg.kind = c.k;
    cfg.runs = runs;
    cfg.java_use_nanotime = c.nanotime;
    cfg.java_via_appletviewer = c.appletviewer;
    out.push_back(cfg);
  }
  return out;
}

void expect_identical(const OverheadSeries& a, const OverheadSeries& b) {
  EXPECT_EQ(a.case_label, b.case_label);
  EXPECT_EQ(a.method_name, b.method_name);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.first_error, b.first_error);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const OverheadSample& x = a.samples[i];
    const OverheadSample& y = b.samples[i];
    // Bitwise equality, not EXPECT_DOUBLE_EQ: determinism is the contract.
    EXPECT_EQ(x.d1_ms, y.d1_ms);
    EXPECT_EQ(x.d2_ms, y.d2_ms);
    EXPECT_EQ(x.browser_rtt1_ms, y.browser_rtt1_ms);
    EXPECT_EQ(x.browser_rtt2_ms, y.browser_rtt2_ms);
    EXPECT_EQ(x.net_rtt1_ms, y.net_rtt1_ms);
    EXPECT_EQ(x.net_rtt2_ms, y.net_rtt2_ms);
    EXPECT_EQ(x.connections_opened1, y.connections_opened1);
    EXPECT_EQ(x.connections_opened2, y.connections_opened2);
  }
}

TEST(ParallelRunner, ParallelMatchesSerialElementwise) {
  const auto cells = mixed_matrix();
  const auto serial = run_matrix(cells, /*jobs=*/1);
  const auto parallel = run_matrix(cells, /*jobs=*/4);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(serial[i], parallel[i]);
  }
  // The unsupported cell (IE + WebSocket) failed identically on both paths.
  EXPECT_EQ(serial[8].failures, cells[8].runs);
  EXPECT_TRUE(serial[8].samples.empty());
}

TEST(ParallelRunner, JobsOneDegeneratesToSerialLoop) {
  auto cells = mixed_matrix();
  cells.resize(4);
  const auto via_runner = run_matrix(cells, /*jobs=*/1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(via_runner[i], run_experiment(cells[i]));
  }
}

TEST(ParallelRunner, ProgressReportsEveryCellInOrderWhenSerial) {
  auto cells = mixed_matrix();
  cells.resize(3);
  std::vector<std::size_t> ticks;
  run_matrix(cells, 1, [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, cells.size());
    ticks.push_back(done);
  });
  EXPECT_EQ(ticks, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ParallelRunner, ThrowingCellDoesNotWedgeThePool) {
  auto cells = mixed_matrix();
  cells.resize(6);
  cells[2].seed = 0xDEAD;  // marks the poisoned cell for the runner below

  const CellRunner faulty = [](const ExperimentConfig& cfg) {
    if (cfg.seed == 0xDEAD) throw std::runtime_error("boom");
    return run_experiment(cfg);
  };
  const auto results = run_matrix_with(cells, /*jobs=*/3, faulty);
  ASSERT_EQ(results.size(), cells.size());

  // The poisoned cell is reported as a full failure with the exception text.
  EXPECT_EQ(results[2].failures, cells[2].runs);
  EXPECT_TRUE(results[2].samples.empty());
  EXPECT_NE(results[2].first_error.find("boom"), std::string::npos);

  // Every other cell still ran to completion and matches its serial twin.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 2) continue;
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(results[i], run_experiment(cells[i]));
  }
}

TEST(ParallelRunner, EmptyMatrixIsFine) {
  EXPECT_TRUE(run_matrix({}, 4).empty());
}

TEST(ParallelRunner, ResolveJobsClampsToCellsAndFloorsAtOne) {
  EXPECT_EQ(resolve_jobs(8, 3), 3);
  EXPECT_EQ(resolve_jobs(2, 10), 2);
  EXPECT_EQ(resolve_jobs(1, 10), 1);
  EXPECT_GE(resolve_jobs(0, 10), 1);   // auto: hardware concurrency
  EXPECT_GE(resolve_jobs(-5, 10), 1);
}

TEST(ThreadPool, SurvivesThrowingTasksAndRecordsThem) {
  ThreadPool pool{4};
  std::atomic<int> ok{0};
  for (int i = 0; i < 40; ++i) {
    if (i % 4 == 0) {
      pool.submit([i] {
        throw std::runtime_error("task failure #" + std::to_string(i));
      });
    } else {
      pool.submit([&ok] { ++ok; });
    }
  }
  pool.wait_idle();
  EXPECT_EQ(ok.load(), 30);

  // Failures are structured: submission ordinal + message, not just a count.
  std::vector<TaskFailure> failures = pool.failures();
  ASSERT_EQ(failures.size(), 10u);
  std::vector<std::size_t> failed_ids;
  for (const TaskFailure& f : failures) {
    failed_ids.push_back(f.task_id);
    EXPECT_EQ(f.what, "task failure #" + std::to_string(f.task_id));
    EXPECT_EQ(f.task_id % 4, 0u);
  }
  std::sort(failed_ids.begin(), failed_ids.end());
  for (std::size_t k = 0; k < failed_ids.size(); ++k) {
    EXPECT_EQ(failed_ids[k], k * 4);
  }

  // The pool still serves new work after the failures.
  pool.submit([&ok] { ++ok; });
  pool.wait_idle();
  EXPECT_EQ(ok.load(), 31);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();
  EXPECT_TRUE(pool.failures().empty());
  EXPECT_EQ(pool.jobs(), 2);
}

}  // namespace
}  // namespace bnm::core
