#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace bnm::sim {
namespace {

TEST(Scheduler, StartsAtEpoch) {
  Scheduler s;
  EXPECT_EQ(s.now(), TimePoint::epoch());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(Duration::millis(3), [&] { order.push_back(3); });
  s.schedule_after(Duration::millis(1), [&] { order.push_back(1); });
  s.schedule_after(Duration::millis(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), TimePoint::epoch() + Duration::millis(3));
}

TEST(Scheduler, SameInstantIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_after(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NestedSchedulingFromCallback) {
  Scheduler s;
  std::vector<double> times;
  s.schedule_after(Duration::millis(1), [&] {
    times.push_back(s.now().ms_since_epoch_f());
    s.schedule_after(Duration::millis(2), [&] {
      times.push_back(s.now().ms_since_epoch_f());
    });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  auto h = s.schedule_after(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelIsIdempotentAndPostFireSafe) {
  Scheduler s;
  auto h = s.schedule_after(Duration::millis(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op after firing
  h.cancel();
}

TEST(Scheduler, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  s.schedule_after(Duration::millis(5), [] {});
  s.run();
  TimePoint fired;
  s.schedule_after(Duration::millis(-10), [&] { fired = s.now(); });
  s.run();
  EXPECT_EQ(fired, TimePoint::epoch() + Duration::millis(5));
}

TEST(Scheduler, ScheduleAtPastClampsToNow) {
  Scheduler s;
  s.schedule_after(Duration::millis(5), [] {});
  s.run();
  TimePoint fired;
  s.schedule_at(TimePoint::epoch(), [&] { fired = s.now(); });
  s.run();
  EXPECT_EQ(fired, s.now());
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler s;
  int ran = 0;
  s.schedule_after(Duration::millis(1), [&] { ++ran; });
  s.schedule_after(Duration::millis(10), [&] { ++ran; });
  s.run_until(TimePoint::epoch() + Duration::millis(5));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), TimePoint::epoch() + Duration::millis(5));
  s.run();
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, RunUntilExecutesEventExactlyAtDeadline) {
  Scheduler s;
  int ran = 0;
  s.schedule_after(Duration::millis(5), [&] { ++ran; });
  s.run_until(TimePoint::epoch() + Duration::millis(5));
  EXPECT_EQ(ran, 1);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_after(Duration::zero(), [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingEventsCountsLiveOnly) {
  Scheduler s;
  auto h1 = s.schedule_after(Duration::millis(1), [] {});
  s.schedule_after(Duration::millis(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, ClearDropsEverything) {
  Scheduler s;
  bool ran = false;
  s.schedule_after(Duration::millis(1), [&] { ran = true; });
  s.clear();
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, ExecutedEventsCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_after(Duration::millis(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  TimePoint last;
  int count = 0;
  for (int i = 0; i < 5000; ++i) {
    s.schedule_after(Duration::micros((i * 7919) % 100000), [&] {
      EXPECT_GE(s.now(), last);
      last = s.now();
      ++count;
    });
  }
  s.run();
  EXPECT_EQ(count, 5000);
}

// ---- calendar-queue edge cases ----

TEST(Scheduler, SameInstantFifoAcrossBucketBoundaries) {
  // Clusters of same-instant events straddling bucket edges: one just
  // before, one exactly on, one just after each of several edges. Global
  // order must be by time, FIFO within an instant, regardless of which
  // bucket (or which side of a promotion) each cluster lands in.
  Scheduler s;
  const Duration w = Scheduler::bucket_width();
  std::vector<std::pair<std::int64_t, int>> fired;
  int tag = 0;
  for (int edge = 1; edge <= 4; ++edge) {
    for (const Duration at :
         {w * edge - Duration::nanos(1), w * edge, w * edge + Duration::nanos(1)}) {
      for (int k = 0; k < 3; ++k) {
        s.schedule_at(TimePoint::epoch() + at, [&s, &fired, t = tag++] {
          fired.emplace_back(s.now().ns_since_epoch(), t);
        });
      }
    }
  }
  s.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(tag));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GE(fired[i].first, fired[i - 1].first);
    if (fired[i].first == fired[i - 1].first) {
      EXPECT_EQ(fired[i].second, fired[i - 1].second + 1);
    }
  }
  // Scheduling order was monotone in time here, so firing order is exactly
  // scheduling order.
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i].second, static_cast<int>(i));
  }
}

TEST(Scheduler, CancelEventAlreadyStagedInBatch) {
  // The victim shares an instant (and therefore a batch) with its killer:
  // by the time the cancel runs, the victim is already staged in the
  // bottom vector. It must be skipped, not fired.
  Scheduler s;
  bool victim_ran = false;
  EventHandle victim;
  s.schedule_after(Duration::millis(1), [&] { victim.cancel(); });
  victim = s.schedule_after(Duration::millis(1), [&] { victim_ran = true; });
  bool after_ran = false;
  s.schedule_after(Duration::millis(1), [&] { after_ran = true; });
  s.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(after_ran);  // later same-instant events still fire
  EXPECT_FALSE(victim.pending());
  EXPECT_EQ(s.executed_events(), 2u);  // cancelled entry is not "executed"
}

TEST(Scheduler, RunUntilExactlyOnBucketEdge) {
  Scheduler s;
  const Duration w = Scheduler::bucket_width();
  const TimePoint edge = TimePoint::epoch() + w * 3;
  int ran = 0;
  s.schedule_at(edge - Duration::nanos(1), [&] { ++ran; });
  s.schedule_at(edge, [&] { ++ran; });              // exactly at the deadline
  s.schedule_at(edge + Duration::nanos(1), [&] { ++ran; });  // next bucket
  s.run_until(edge);
  EXPECT_EQ(ran, 2);  // deadline is inclusive
  EXPECT_EQ(s.now(), edge);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(s.now(), edge + Duration::nanos(1));
}

TEST(Scheduler, EpochRolloverWithFarFutureEvents) {
  // Events far beyond the ring horizon (kBuckets * width) park in the
  // overflow heap and must migrate into the ring lazily as the epoch
  // advances, interleaving correctly with near-future work.
  Scheduler s;
  const Duration horizon = Scheduler::bucket_width() * Scheduler::kBuckets;
  std::vector<int> order;
  s.schedule_after(horizon * 3 + Duration::micros(7), [&] { order.push_back(4); });
  s.schedule_after(horizon + Duration::micros(1), [&] {
    order.push_back(2);
    // Nested far-future event, scheduled after the first rollover.
    s.schedule_after(horizon, [&] { order.push_back(3); });
  });
  s.schedule_after(Duration::micros(5), [&] { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(s.now(),
            TimePoint::epoch() + horizon * 3 + Duration::micros(7));
}

TEST(Scheduler, HandleOutlivesScheduler) {
  EventHandle h;
  {
    Scheduler s;
    h = s.schedule_after(Duration::millis(1), [] {});
    EXPECT_TRUE(h.pending());
  }
  // The pool outlives the scheduler; the unfired event still reads as
  // pending (same contract the shared_ptr<bool> tokens had) and cancel is
  // safe.
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, StepBatchFiresWholeBucketAndCountsBatches) {
  Scheduler s;
  int ran = 0;
  for (int i = 0; i < 8; ++i) {
    s.schedule_after(Duration::micros(1), [&] { ++ran; });
  }
  s.schedule_after(Duration::millis(1), [&] { ++ran; });
  EXPECT_EQ(s.step_batch(), 8u);  // the whole first bucket, one call
  EXPECT_EQ(ran, 8);
  EXPECT_EQ(s.step_batch(), 1u);
  EXPECT_EQ(s.step_batch(), 0u);  // empty queue
  EXPECT_EQ(s.executed_batches(), 2u);
}

TEST(Scheduler, NextEventTimeReportsEarliestAcrossTiers) {
  Scheduler s;
  EXPECT_FALSE(s.next_event_time().has_value());
  const Duration horizon = Scheduler::bucket_width() * Scheduler::kBuckets;
  s.schedule_after(horizon * 2, [] {});  // overflow tier
  EXPECT_EQ(*s.next_event_time(), TimePoint::epoch() + horizon * 2);
  s.schedule_after(Duration::micros(3), [] {});  // ring tier
  EXPECT_EQ(*s.next_event_time(), TimePoint::epoch() + Duration::micros(3));
}

TEST(Scheduler, CalendarAndHeapFireIdenticalSequences) {
  // The same pseudo-random workload (schedules, nested schedules, cancels)
  // under both queue implementations must fire the identical sequence of
  // (time, tag) pairs — the A/B identity the Release gate enforces at
  // matrix scale.
  auto drive = [](Scheduler::QueueImpl impl) {
    Scheduler s{impl};
    std::vector<std::pair<std::int64_t, int>> fired;
    std::vector<EventHandle> handles;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 400; ++i) {
      const auto delay = Duration::nanos(
          static_cast<std::int64_t>(next() % 40'000'000));  // 0..40ms
      handles.push_back(s.schedule_after(delay, [&s, &fired, &next, i] {
        fired.emplace_back(s.now().ns_since_epoch(), i);
        if (next() % 4 == 0) {
          s.post_after(Duration::nanos(static_cast<std::int64_t>(
                           next() % 1'000'000)),
                       [&s, &fired, i] {
                         fired.emplace_back(s.now().ns_since_epoch(),
                                            i + 1000);
                       });
        }
      }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 7) handles[i].cancel();
    s.run();
    return fired;
  };
  EXPECT_EQ(drive(Scheduler::QueueImpl::kCalendar),
            drive(Scheduler::QueueImpl::kHeap));
}

TEST(Scheduler, ClearedSchedulerReanchorsAndKeepsWorking) {
  // clear() between repetitions must leave the calendar consistent even
  // when now() sits mid-ring with overflow entries queued.
  Scheduler s;
  const Duration horizon = Scheduler::bucket_width() * Scheduler::kBuckets;
  s.schedule_after(Duration::micros(50), [] {});
  s.run();
  s.schedule_after(Duration::micros(1), [] {});
  s.schedule_after(horizon * 2, [] {});
  s.clear();
  EXPECT_EQ(s.pending_events(), 0u);
  int ran = 0;
  s.schedule_after(Duration::micros(2), [&] { ++ran; });
  s.run();
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace bnm::sim
