#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace bnm::sim {
namespace {

TEST(Scheduler, StartsAtEpoch) {
  Scheduler s;
  EXPECT_EQ(s.now(), TimePoint::epoch());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_after(Duration::millis(3), [&] { order.push_back(3); });
  s.schedule_after(Duration::millis(1), [&] { order.push_back(1); });
  s.schedule_after(Duration::millis(2), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), TimePoint::epoch() + Duration::millis(3));
}

TEST(Scheduler, SameInstantIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_after(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NestedSchedulingFromCallback) {
  Scheduler s;
  std::vector<double> times;
  s.schedule_after(Duration::millis(1), [&] {
    times.push_back(s.now().ms_since_epoch_f());
    s.schedule_after(Duration::millis(2), [&] {
      times.push_back(s.now().ms_since_epoch_f());
    });
  });
  s.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  auto h = s.schedule_after(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelIsIdempotentAndPostFireSafe) {
  Scheduler s;
  auto h = s.schedule_after(Duration::millis(1), [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op after firing
  h.cancel();
}

TEST(Scheduler, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  s.schedule_after(Duration::millis(5), [] {});
  s.run();
  TimePoint fired;
  s.schedule_after(Duration::millis(-10), [&] { fired = s.now(); });
  s.run();
  EXPECT_EQ(fired, TimePoint::epoch() + Duration::millis(5));
}

TEST(Scheduler, ScheduleAtPastClampsToNow) {
  Scheduler s;
  s.schedule_after(Duration::millis(5), [] {});
  s.run();
  TimePoint fired;
  s.schedule_at(TimePoint::epoch(), [&] { fired = s.now(); });
  s.run();
  EXPECT_EQ(fired, s.now());
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler s;
  int ran = 0;
  s.schedule_after(Duration::millis(1), [&] { ++ran; });
  s.schedule_after(Duration::millis(10), [&] { ++ran; });
  s.run_until(TimePoint::epoch() + Duration::millis(5));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), TimePoint::epoch() + Duration::millis(5));
  s.run();
  EXPECT_EQ(ran, 2);
}

TEST(Scheduler, RunUntilExecutesEventExactlyAtDeadline) {
  Scheduler s;
  int ran = 0;
  s.schedule_after(Duration::millis(5), [&] { ++ran; });
  s.run_until(TimePoint::epoch() + Duration::millis(5));
  EXPECT_EQ(ran, 1);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_after(Duration::zero(), [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingEventsCountsLiveOnly) {
  Scheduler s;
  auto h1 = s.schedule_after(Duration::millis(1), [] {});
  s.schedule_after(Duration::millis(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, ClearDropsEverything) {
  Scheduler s;
  bool ran = false;
  s.schedule_after(Duration::millis(1), [&] { ran = true; });
  s.clear();
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, ExecutedEventsCounter) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_after(Duration::millis(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  TimePoint last;
  int count = 0;
  for (int i = 0; i < 5000; ++i) {
    s.schedule_after(Duration::micros((i * 7919) % 100000), [&] {
      EXPECT_GE(s.now(), last);
      last = s.now();
      ++count;
    });
  }
  s.run();
  EXPECT_EQ(count, 5000);
}

}  // namespace
}  // namespace bnm::sim
