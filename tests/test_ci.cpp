#include <gtest/gtest.h>

#include "sim/random.h"
#include "stats/ci.h"

namespace bnm::stats {
namespace {

TEST(TCritical, KnownTableValues) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 1), 63.657, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 20), 2.845, 1e-3);
}

TEST(TCritical, InterpolatedTail) {
  // df = 49 (the paper's n = 50 runs) sits between 40 and 60.
  const double t49 = t_critical(0.95, 49);
  EXPECT_GT(t49, 2.000);
  EXPECT_LT(t49, 2.021);
  // Large df approaches the normal z-value.
  EXPECT_NEAR(t_critical(0.95, 1000000), 1.960, 1e-2);
  EXPECT_NEAR(t_critical(0.99, 1000000), 2.576, 1e-2);
}

TEST(TCritical, MonotoneDecreasingInDf) {
  double prev = 1e9;
  for (std::size_t df : {1u, 2u, 5u, 10u, 30u, 40u, 60u, 120u, 10000u}) {
    const double t = t_critical(0.95, df);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(MeanCi, DegenerateCases) {
  EXPECT_DOUBLE_EQ(mean_ci({}).mean, 0.0);
  EXPECT_DOUBLE_EQ(mean_ci({}).half_width, 0.0);
  const auto one = mean_ci({5.0});
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
}

TEST(MeanCi, ConstantSampleHasZeroWidth) {
  const auto ci = mean_ci(std::vector<double>(50, 3.0));
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_TRUE(ci.contains(3.0));
}

TEST(MeanCi, KnownSmallSample) {
  // n=4, mean=2.5, s=stddev({1,2,3,4})=1.29099..., t(3)=3.182.
  const auto ci = mean_ci({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(ci.mean, 2.5);
  EXPECT_NEAR(ci.half_width, 3.182 * 1.2909944 / 2.0, 1e-4);
  EXPECT_DOUBLE_EQ(ci.lo(), ci.mean - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.hi(), ci.mean + ci.half_width);
}

TEST(MeanCi, WidthShrinksWithSampleSize) {
  sim::Rng rng{17};
  std::vector<double> big;
  for (int i = 0; i < 1000; ++i) big.push_back(rng.normal(10, 2));
  const std::vector<double> small(big.begin(), big.begin() + 10);
  EXPECT_LT(mean_ci(big).half_width, mean_ci(small).half_width);
}

TEST(MeanCi, NinetyNineWiderThanNinetyFive) {
  sim::Rng rng{18};
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.normal(0, 1));
  EXPECT_GT(mean_ci(xs, 0.99).half_width, mean_ci(xs, 0.95).half_width);
}

// Property: a 95% CI over repeated draws covers the true mean ~95% of the
// time (loose bounds: 88-100% over 200 trials).
class CoverageProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoverageProperty, CoversTrueMean) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam() * 29)};
  const double true_mean = 42.0;
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 30; ++i) xs.push_back(rng.normal(true_mean, 5));
    if (mean_ci(xs).contains(true_mean)) ++covered;
  }
  EXPECT_GE(covered, 176);  // >= 88%
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperty, ::testing::Range(1, 5));

}  // namespace
}  // namespace bnm::stats
