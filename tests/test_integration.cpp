// End-to-end reproduction checks: the paper's headline findings must hold
// on reduced-size experiments (fewer runs than the benches, same pipeline).
#include <gtest/gtest.h>

#include <cmath>

#include "core/appraisal.h"
#include "core/experiment.h"
#include "net/pcap_writer.h"
#include "stats/descriptive.h"

namespace bnm::core {
namespace {

using browser::BrowserId;
using browser::OsId;
using methods::ProbeKind;

OverheadSeries run(ProbeKind kind, BrowserId b, OsId os, int runs = 25,
                   bool nanotime = false) {
  ExperimentConfig cfg;
  cfg.kind = kind;
  cfg.browser = b;
  cfg.os = os;
  cfg.runs = runs;
  cfg.java_use_nanotime = nanotime;
  return run_experiment(cfg);
}

TEST(Reproduction, SocketMethodsBeatHttpMethods) {
  // Finding 1+2: socket overheads are much lower than HTTP overheads.
  const double ws =
      std::fabs(run(ProbeKind::kWebSocket, BrowserId::kChrome, OsId::kUbuntu)
                    .d2_box()
                    .median);
  const double flash_sock =
      std::fabs(run(ProbeKind::kFlashSocket, BrowserId::kChrome, OsId::kUbuntu)
                    .d2_box()
                    .median);
  const double xhr =
      run(ProbeKind::kXhrGet, BrowserId::kChrome, OsId::kUbuntu).d2_box().median;
  const double flash_http =
      run(ProbeKind::kFlashGet, BrowserId::kChrome, OsId::kUbuntu)
          .d2_box()
          .median;
  const double dom =
      run(ProbeKind::kDom, BrowserId::kChrome, OsId::kUbuntu).d2_box().median;

  EXPECT_LT(ws, 1.0);
  EXPECT_LT(flash_sock, 2.0);
  EXPECT_GT(xhr, 2.0);
  EXPECT_GT(flash_http, 15.0);
  EXPECT_LT(dom, 5.0);
  EXPECT_LT(dom, xhr);
  EXPECT_LT(xhr, flash_http);
}

TEST(Reproduction, Table3HandshakeInflation) {
  const auto get =
      run(ProbeKind::kFlashGet, BrowserId::kOpera, OsId::kWindows7, 30);
  const auto post =
      run(ProbeKind::kFlashPost, BrowserId::kOpera, OsId::kWindows7, 30);
  const double get_d1 = get.d1_box().median;
  const double get_d2 = get.d2_box().median;
  const double post_d1 = post.d1_box().median;
  const double post_d2 = post.d2_box().median;

  EXPECT_GT(get_d1, 80.0);   // paper: 101.1
  EXPECT_LT(get_d2, 40.0);   // paper: 19.8
  EXPECT_GT(post_d1, 80.0);  // paper: 100.1
  EXPECT_GT(post_d2, 50.0);  // paper: 69.6
  // "Subtracting 50 ms from POST d2 gives almost the GET d2."
  EXPECT_NEAR(post_d2 - 50.0, get_d2, 10.0);
}

TEST(Reproduction, JavaDateUnderestimatesOnWindows) {
  // Finding 4: negative overheads (RTT under-estimation) with Date.getTime.
  const auto series =
      run(ProbeKind::kJavaSocket, BrowserId::kFirefox, OsId::kWindows7, 50);
  const double min_d = stats::min(series.d2());
  EXPECT_LT(min_d, -2.0);  // under-estimation present
  // Quantization keeps every sample within about one 15.625 ms granule.
  EXPECT_GT(min_d, -16.0);
  EXPECT_LT(stats::max(series.d2()), 16.0);
}

TEST(Reproduction, UbuntuJavaHasNoSuchPathology) {
  const auto series =
      run(ProbeKind::kJavaSocket, BrowserId::kFirefox, OsId::kUbuntu, 30);
  EXPECT_GT(stats::min(series.d2()), -1.5);
  EXPECT_LT(series.d2_box().iqr(), 2.5);
}

TEST(Reproduction, Table4NanotimeFixesJava) {
  // Finding 5: nanoTime removes the under-estimation; socket overhead ~0.
  const auto series = run(ProbeKind::kJavaSocket, BrowserId::kChrome,
                          OsId::kWindows7, 30, /*nanotime=*/true);
  const auto ci = series.d2_ci();
  EXPECT_GT(ci.mean, -0.05);
  EXPECT_LT(ci.mean, 0.5);
  EXPECT_LT(ci.half_width, 0.2);
  EXPECT_GT(stats::min(series.d1()), -0.5);
}

TEST(Reproduction, WebSocketIsMostConsistentNativeMethod) {
  // Appraisal ranks WebSocket above the HTTP-based native methods.
  std::map<ProbeKind, std::vector<OverheadSeries>> results;
  for (const auto kind : {ProbeKind::kWebSocket, ProbeKind::kXhrGet,
                          ProbeKind::kDom}) {
    results[kind].push_back(run(kind, BrowserId::kChrome, OsId::kUbuntu, 15));
    results[kind].push_back(run(kind, BrowserId::kFirefox, OsId::kWindows7, 15));
  }
  const auto ranked = rank_methods(results);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].kind, ProbeKind::kWebSocket);
}

TEST(Reproduction, FlashHttpHasWorstCrossBrowserConsistency) {
  std::vector<OverheadSeries> flash, dom;
  for (const auto b : {BrowserId::kChrome, BrowserId::kIe, BrowserId::kSafari}) {
    flash.push_back(run(ProbeKind::kFlashGet, b, OsId::kWindows7, 15));
    dom.push_back(run(ProbeKind::kDom, b, OsId::kWindows7, 15));
  }
  const auto fa = appraise_method(ProbeKind::kFlashGet, flash);
  const auto da = appraise_method(ProbeKind::kDom, dom);
  EXPECT_GT(fa.cross_case_spread_ms, 5 * da.cross_case_spread_ms);
}

TEST(Reproduction, CapturePcapDumpIsWriteable) {
  ExperimentConfig cfg;
  cfg.kind = ProbeKind::kXhrGet;
  cfg.browser = BrowserId::kChrome;
  cfg.os = OsId::kUbuntu;
  cfg.runs = 1;
  Experiment exp{cfg};
  exp.run();
  // Whatever is left in the capture (teardown packets from the inter-run
  // gap) must serialize to a valid pcap: global header + records.
  const std::string path = ::testing::TempDir() + "/bnm_integration.pcap";
  EXPECT_GE(net::PcapWriter::write_file(exp.testbed().client().capture(), path),
            24u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bnm::core
