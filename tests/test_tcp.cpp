#include <gtest/gtest.h>

#include <vector>

#include "net_fixture.h"

namespace bnm::net {
namespace {

using test::TwoHostFixture;

class TcpTest : public TwoHostFixture {
 protected:
  /// Start an echo listener on the server.
  void listen_echo(Port port = 9000) {
    server->tcp_listen(port, [this](std::shared_ptr<TcpConnection> conn) {
      accepted.push_back(conn);
      TcpCallbacks cbs;
      auto weak = std::weak_ptr<TcpConnection>(conn);
      cbs.on_data = [weak](const Payload& d) {
        if (auto c = weak.lock()) c->send(d);
      };
      cbs.on_close = [weak] {
        if (auto c = weak.lock()) c->close();
      };
      conn->set_callbacks(std::move(cbs));
    });
  }

  std::vector<std::shared_ptr<TcpConnection>> accepted;
};

TEST_F(TcpTest, HandshakeEstablishesBothEnds) {
  listen_echo();
  bool connected = false;
  TcpCallbacks cbs;
  cbs.on_connect = [&] { connected = true; };
  auto conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  EXPECT_EQ(conn->state(), TcpConnection::State::kSynSent);
  run_all();
  EXPECT_TRUE(connected);
  EXPECT_EQ(conn->state(), TcpConnection::State::kEstablished);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0]->state(), TcpConnection::State::kEstablished);
}

TEST_F(TcpTest, HandshakeIsThreePackets) {
  listen_echo();
  client->tcp_connect(server_ep(9000), {});
  run_all();
  const auto& cap = client->capture();
  ASSERT_GE(cap.size(), 3u);
  EXPECT_TRUE(cap.packet(0).flags.syn);
  EXPECT_FALSE(cap.packet(0).flags.ack);
  EXPECT_TRUE(cap.packet(1).flags.syn);
  EXPECT_TRUE(cap.packet(1).flags.ack);
  EXPECT_TRUE(cap.packet(2).is_pure_ack());
}

TEST_F(TcpTest, EchoRoundtripDeliversPayload) {
  listen_echo();
  std::string received;
  TcpCallbacks cbs;
  cbs.on_data = [&](const Payload& d) {
    received += to_string(d);
  };
  std::shared_ptr<TcpConnection> conn;
  cbs.on_connect = [&] { conn->send(std::string{"hello tcp"}); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_EQ(received, "hello tcp");
  EXPECT_EQ(conn->bytes_delivered(), 9u);
}

TEST_F(TcpTest, DataQueuedBeforeConnectFlushesAfterHandshake) {
  listen_echo();
  std::string received;
  TcpCallbacks cbs;
  cbs.on_data = [&](const Payload& d) {
    received += to_string(d);
  };
  auto conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  conn->send(std::string{"early"});  // still SYN_SENT
  run_all();
  EXPECT_EQ(received, "early");
}

TEST_F(TcpTest, LargeSendIsSegmentedByMss) {
  listen_echo();
  const std::string big(5000, 'x');
  std::size_t received = 0;
  TcpCallbacks cbs;
  cbs.on_data = [&](const Payload& d) { received += d.size(); };
  std::shared_ptr<TcpConnection> conn;
  cbs.on_connect = [&] { conn->send(big); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_EQ(received, 5000u);

  // Count outbound data segments: ceil(5000 / 1460) = 4.
  std::size_t data_segments = 0;
  std::size_t oversized = 0;
  for (std::size_t i = 0; i < client->capture().size(); ++i) {
    const auto r = client->capture().at(i);
    if (r.direction == CaptureDirection::kOutbound && r.packet.carries_data()) {
      ++data_segments;
      if (r.packet.payload.size() > 1460) ++oversized;
    }
  }
  EXPECT_EQ(data_segments, 4u);
  EXPECT_EQ(oversized, 0u);
}

TEST_F(TcpTest, ResponseCarriesPiggybackAck) {
  listen_echo();
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_connect = [&] { conn->send(std::string{"ping"}); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  // Find the server's echo segment: it must ACK the request bytes.
  bool found = false;
  for (std::size_t i = 0; i < client->capture().size(); ++i) {
    const auto r = client->capture().at(i);
    if (r.direction == CaptureDirection::kInbound && r.packet.carries_data()) {
      EXPECT_TRUE(r.packet.flags.ack);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TcpTest, ActiveCloseRunsFullTeardown) {
  listen_echo();
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_connect = [&] { conn->close(); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0]->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(client->open_connections(), 0u);
  EXPECT_EQ(server->open_connections(), 0u);
}

TEST_F(TcpTest, CloseAfterSendDeliversEverythingFirst) {
  listen_echo();
  std::string received;
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_data = [&](const Payload& d) {
    received += to_string(d);
  };
  cbs.on_connect = [&] {
    conn->send(std::string(3000, 'q'));
    conn->close();  // FIN must wait for the buffer to drain
  };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_EQ(received.size(), 3000u);
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
}

TEST_F(TcpTest, PeerCloseNotifiesApplication) {
  server->tcp_listen(9000, [](std::shared_ptr<TcpConnection> conn) {
    // Server closes immediately after accepting.
    conn->close();
  });
  bool closed = false;
  TcpCallbacks cbs;
  cbs.on_close = [&] { closed = true; };
  client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_TRUE(closed);
}

TEST_F(TcpTest, ConnectToClosedPortGetsReset) {
  bool reset = false;
  TcpCallbacks cbs;
  cbs.on_reset = [&] { reset = true; };
  auto conn = client->tcp_connect(server_ep(4444), std::move(cbs));
  run_all();
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
}

TEST_F(TcpTest, AbortSendsRst) {
  listen_echo();
  std::shared_ptr<TcpConnection> conn;
  bool server_reset = false;
  server->tcp_listen(9001, [&](std::shared_ptr<TcpConnection> c) {
    TcpCallbacks cbs;
    cbs.on_reset = [&] { server_reset = true; };
    c->set_callbacks(std::move(cbs));
  });
  TcpCallbacks cbs;
  cbs.on_connect = [&] { conn->abort(); };
  conn = client->tcp_connect(server_ep(9001), std::move(cbs));
  run_all();
  EXPECT_TRUE(server_reset);
  EXPECT_EQ(conn->state(), TcpConnection::State::kClosed);
}

TEST_F(TcpTest, CountersTrackSegments) {
  listen_echo();
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_connect = [&] { conn->send(std::string{"abc"}); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_GE(conn->segments_sent(), 3u);  // SYN + ACK + data
  EXPECT_EQ(conn->retransmissions(), 0u);
}

class LossyTcpTest : public TcpTest {
 protected:
  void SetUp() override {
    build();
    // 20% loss client->switch direction.
    net::Link::Config lc;
    lc.loss_probability = 0.2;
    lc.name = "lossy";
    lossy_link = std::make_unique<Link>(*sim, lc);
    // Rebuild topology with the lossy link in place of link1.
    client = std::make_unique<Host>(*sim, [&] {
      Host::Config c;
      c.name = "client2";
      c.ip = IpAddress{10, 0, 0, 1};
      return c;
    }());
    fabric = std::make_unique<SwitchFabric>(*sim);
    client->attach_link(lossy_link.get(), Link::Side::kA);
    const auto p0 = fabric->add_port(lossy_link.get(), Link::Side::kB);
    const auto p1 = fabric->add_port(link2.get(), Link::Side::kA);
    fabric->learn(client->ip(), p0);
    fabric->learn(server->ip(), p1);
  }
  std::unique_ptr<Link> lossy_link;
};

TEST_F(LossyTcpTest, RetransmissionRecoversFromLoss) {
  listen_echo();
  std::size_t received = 0;
  std::shared_ptr<TcpConnection> conn;
  TcpCallbacks cbs;
  cbs.on_data = [&](const Payload& d) { received += d.size(); };
  cbs.on_connect = [&] { conn->send(std::string(20000, 'r')); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  // Allow plenty of simulated time for RTO-driven recovery.
  run_for(sim::Duration::seconds(120));
  EXPECT_EQ(received, 20000u);
  EXPECT_GT(conn->retransmissions(), 0u);
}

}  // namespace
}  // namespace bnm::net
