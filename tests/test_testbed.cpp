#include <gtest/gtest.h>

#include <set>

#include "core/testbed.h"
#include "http/client.h"

namespace bnm::core {
namespace {

using browser::OsId;

TEST(TestbedTest, EndpointsMatchConfig) {
  Testbed::Config cfg;
  Testbed tb{cfg};
  EXPECT_EQ(tb.http_endpoint().port, 80);
  EXPECT_EQ(tb.tcp_echo_endpoint().port, 9000);
  EXPECT_EQ(tb.udp_echo_endpoint().port, 9001);
  EXPECT_EQ(tb.ws_endpoint().port, 8088);
  EXPECT_EQ(tb.http_endpoint().ip.to_string(), "10.0.0.2");
  EXPECT_EQ(tb.client().ip().to_string(), "10.0.0.1");
}

TEST(TestbedTest, HttpRttIncludesServerDelay) {
  Testbed::Config cfg;
  cfg.server_delay = sim::Duration::millis(50);
  Testbed tb{cfg};
  http::HttpClient client{tb.client()};
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/echo";
  sim::TimePoint done;
  const sim::TimePoint start = tb.sim().now();
  client.request(tb.http_endpoint(), req,
                 [&](http::HttpResponse r, http::HttpClient::TransferInfo) {
                   EXPECT_EQ(r.body, "pong");
                   done = tb.sim().now();
                 });
  tb.sim().scheduler().run();
  // Handshake (1 delay) + request/response (1 delay) >= 100 ms.
  EXPECT_GT(done - start, sim::Duration::millis(100));
  EXPECT_LT(done - start, sim::Duration::millis(105));
}

TEST(TestbedTest, CustomServerDelayHonored) {
  Testbed::Config cfg;
  cfg.server_delay = sim::Duration::millis(10);
  Testbed tb{cfg};
  ASSERT_NE(tb.server().egress_netem(), nullptr);
  EXPECT_EQ(tb.server().egress_netem()->config().delay,
            sim::Duration::millis(10));
}

TEST(TestbedTest, ClientCaptureEnabledServerCaptureOff) {
  Testbed::Config cfg;
  Testbed tb{cfg};
  http::HttpClient client{tb.client()};
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/echo";
  client.request(tb.http_endpoint(), req,
                 [](http::HttpResponse, http::HttpClient::TransferInfo) {});
  tb.sim().scheduler().run();
  EXPECT_GT(tb.client().capture().size(), 0u);
  EXPECT_EQ(tb.server().capture().size(), 0u);
}

TEST(TestbedTest, LaunchBrowserSessionsAreIndependent) {
  Testbed::Config cfg;
  cfg.client_os = OsId::kWindows7;
  Testbed tb{cfg};
  const auto profile =
      browser::make_profile(browser::BrowserId::kChrome, OsId::kWindows7);
  auto b1 = tb.launch_browser(profile, 0);
  auto b2 = tb.launch_browser(profile, 1);
  // Separate HTTP stacks (pools), shared machine clocks.
  EXPECT_NE(&b1->http(), &b2->http());
  EXPECT_EQ(&b1->clock(browser::ClockKind::kJavaDate),
            &b2->clock(browser::ClockKind::kJavaDate));
}

TEST(TestbedTest, ClocksFollowClientOs) {
  Testbed::Config w;
  w.client_os = OsId::kWindows7;
  Testbed tbw{w};
  std::set<std::int64_t> granules;
  for (double s = 0; s < 3600; s += 11) {
    granules.insert(tbw.clocks()
                        .java_date()
                        .granularity_at(sim::TimePoint::epoch() +
                                        sim::Duration::from_seconds_f(s))
                        .ns());
  }
  EXPECT_EQ(granules.size(), 2u);
}

}  // namespace
}  // namespace bnm::core
