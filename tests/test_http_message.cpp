#include <gtest/gtest.h>

#include "http/message.h"

namespace bnm::http {
namespace {

TEST(Headers, CaseInsensitiveLookup) {
  Headers h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_TRUE(h.contains("Content-type"));
  EXPECT_FALSE(h.contains("Content-Length"));
}

TEST(Headers, SetReplacesAllOccurrences) {
  Headers h;
  h.add("X-A", "1");
  h.add("x-a", "2");
  h.set("X-A", "3");
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.get("x-a"), "3");
}

TEST(Headers, RemoveAndEmpty) {
  Headers h;
  EXPECT_TRUE(h.empty());
  h.add("A", "1");
  h.remove("a");
  EXPECT_TRUE(h.empty());
}

TEST(Headers, GetFirstOfMultiple) {
  Headers h;
  h.add("Set-Cookie", "a=1");
  h.add("Set-Cookie", "b=2");
  EXPECT_EQ(h.get("set-cookie"), "a=1");
  EXPECT_EQ(h.size(), 2u);
}

TEST(Headers, IequalsEdgeCases) {
  EXPECT_TRUE(Headers::iequals("", ""));
  EXPECT_TRUE(Headers::iequals("AbC", "aBc"));
  EXPECT_FALSE(Headers::iequals("ab", "abc"));
}

TEST(HttpRequest, SerializeBasicGet) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/echo";
  req.headers.set("Host", "10.0.0.2:80");
  EXPECT_EQ(req.serialize(),
            "GET /echo HTTP/1.1\r\nHost: 10.0.0.2:80\r\n\r\n");
}

TEST(HttpRequest, SerializeAddsContentLengthForBody) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/sink";
  req.body = "hello";
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(HttpRequest, SerializeRespectsExistingFraming) {
  HttpRequest req;
  req.method = "POST";
  req.headers.set("Content-Length", "5");
  req.body = "hello";
  const std::string wire = req.serialize();
  // Exactly one Content-Length.
  EXPECT_EQ(wire.find("Content-Length"), wire.rfind("Content-Length"));
}

TEST(HttpRequest, KeepAliveDefaults) {
  HttpRequest req;
  EXPECT_TRUE(req.wants_keep_alive());  // HTTP/1.1 default
  req.headers.set("Connection", "close");
  EXPECT_FALSE(req.wants_keep_alive());
  req.headers.set("Connection", "keep-alive");
  EXPECT_TRUE(req.wants_keep_alive());
  req.version = "HTTP/1.0";
  req.headers.remove("Connection");
  EXPECT_FALSE(req.wants_keep_alive());
  req.headers.set("Connection", "Keep-Alive");
  EXPECT_TRUE(req.wants_keep_alive());
}

TEST(HttpResponse, SerializeAlwaysFramed) {
  HttpResponse resp = HttpResponse::make(200, "");
  const std::string wire = resp.serialize();
  EXPECT_NE(wire.find("Content-Length: 0\r\n"), std::string::npos);
  EXPECT_EQ(wire.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
}

TEST(HttpResponse, MakeSetsReasonAndType) {
  const HttpResponse r = HttpResponse::make(404, "nope", "text/plain");
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(r.reason, "Not Found");
  EXPECT_EQ(r.headers.get("Content-Type"), "text/plain");
  EXPECT_EQ(r.body, "nope");
}

TEST(ReasonPhrase, KnownCodes) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(101), "Switching Protocols");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(405), "Method Not Allowed");
  EXPECT_EQ(reason_phrase(500), "Internal Server Error");
  EXPECT_EQ(reason_phrase(299), "Unknown");
}

TEST(ChunkedEncode, SingleChunkAndTerminator) {
  EXPECT_EQ(chunked_encode("hello"), "5\r\nhello\r\n0\r\n\r\n");
}

TEST(ChunkedEncode, SplitsAtChunkSize) {
  const std::string out = chunked_encode("abcdefgh", 3);
  EXPECT_EQ(out, "3\r\nabc\r\n3\r\ndef\r\n2\r\ngh\r\n0\r\n\r\n");
}

TEST(ChunkedEncode, EmptyBody) {
  EXPECT_EQ(chunked_encode(""), "0\r\n\r\n");
}

TEST(ChunkedEncode, HexSizes) {
  const std::string out = chunked_encode(std::string(255, 'z'), 255);
  EXPECT_EQ(out.rfind("ff\r\n", 0), 0u);
}

}  // namespace
}  // namespace bnm::http
