// Passive RTT estimation: RFC 7323 timestamp plumbing in the simulated TCP
// stack, the TSval<->TSecr matcher's edge cases (delayed/cumulative ACK
// echo, Karn's-rule retransmission discard, TSval wraparound, zero-window
// probes, coarse-clock duplicates, unidirectional visibility), pcap
// round-tripping of the option bytes, and the end-to-end appraisal
// acceptance bound (median |error| <= one TSval tick, loss-free).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "net_fixture.h"
#include "net/pcap_reader.h"
#include "net/pcap_writer.h"
#include "passive/appraisal.h"
#include "passive/rtt_estimator.h"

namespace bnm::passive {
namespace {

using test::TwoHostFixture;

// ---------------------------------------------------------------------------
// Packet-level plumbing
// ---------------------------------------------------------------------------

TEST(PassivePacket, TimestampOptionGrowsWireSize) {
  net::Packet ack;
  ack.protocol = net::Protocol::kTcp;
  ack.flags.ack = true;
  EXPECT_EQ(ack.ip_size(), net::kIpHeaderBytes + net::kTcpHeaderBytes);
  ack.ts.present = true;
  EXPECT_EQ(ack.ip_size(), net::kIpHeaderBytes + net::kTcpHeaderBytes +
                               net::kTcpTimestampOptionBytes);
  // UDP is unaffected by the TCP-only field.
  net::Packet udp;
  udp.protocol = net::Protocol::kUdp;
  udp.ts.present = true;
  EXPECT_EQ(udp.ip_size(), net::kIpHeaderBytes + net::kUdpHeaderBytes);
}

TEST(PassivePacket, PcapRoundTripsTimestampOption) {
  net::Packet pkt;
  pkt.protocol = net::Protocol::kTcp;
  pkt.src = {net::IpAddress{10, 0, 0, 1}, 1234};
  pkt.dst = {net::IpAddress{10, 0, 0, 2}, 80};
  pkt.flags.ack = true;
  pkt.flags.psh = true;
  pkt.seq = 777;
  pkt.ack = 888;
  pkt.ts.present = true;
  pkt.ts.tsval = 0xDEADBEEF;
  pkt.ts.tsecr = 0x01020304;
  pkt.payload = net::Payload{std::vector<std::uint8_t>(33, 0x5a)};

  const auto frame = net::PcapWriter::synthesize_frame(pkt);
  // Data offset must be 8 words: 20 header + 12 option bytes.
  EXPECT_EQ(frame[net::kIpHeaderBytes + 12] >> 4, 8);
  const auto parsed = net::PcapReader::parse_frame(net::Payload{frame});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ts.present);
  EXPECT_EQ(parsed->ts.tsval, 0xDEADBEEFu);
  EXPECT_EQ(parsed->ts.tsecr, 0x01020304u);
  EXPECT_EQ(parsed->seq, 777u);
  EXPECT_EQ(parsed->payload.size(), 33u);

  // Without the option nothing changed on the wire.
  pkt.ts = {};
  const auto bare = net::PcapWriter::synthesize_frame(pkt);
  EXPECT_EQ(bare[net::kIpHeaderBytes + 12] >> 4, 5);
  const auto parsed_bare = net::PcapReader::parse_frame(net::Payload{bare});
  ASSERT_TRUE(parsed_bare.has_value());
  EXPECT_FALSE(parsed_bare->ts.present);
}

// ---------------------------------------------------------------------------
// TCP-stack negotiation and echo rules
// ---------------------------------------------------------------------------

class PassiveTcpTest : public TwoHostFixture {
 protected:
  void SetUp() override {
    tcp_config.timestamps = true;
    configure();
    build();
  }
  virtual void configure() {}

  void listen_sink(net::Port port = 9000) {
    server->tcp_listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
      accepted.push_back(conn);
      conn->set_callbacks({});
    });
  }
  std::vector<std::shared_ptr<net::TcpConnection>> accepted;
};

TEST_F(PassiveTcpTest, NegotiatedOnSynAndStampedOnEverySegment) {
  listen_sink();
  auto conn = client->tcp_connect(server_ep(9000), {});
  run_all();
  ASSERT_TRUE(conn->timestamps_negotiated());
  const auto& cap = client->capture();
  ASSERT_GE(cap.size(), 3u);
  EXPECT_TRUE(cap.packet(0).flags.syn);
  EXPECT_TRUE(cap.packet(0).ts.present);
  EXPECT_EQ(cap.packet(0).ts.tsecr, 0u);  // nothing to echo on the SYN
  EXPECT_TRUE(cap.packet(1).flags.syn);
  EXPECT_TRUE(cap.packet(1).flags.ack);
  EXPECT_TRUE(cap.packet(1).ts.present);
  EXPECT_EQ(cap.packet(1).ts.tsecr, cap.packet(0).ts.tsval);
  for (std::size_t i = 0; i < cap.size(); ++i) {
    EXPECT_TRUE(cap.packet(i).ts.present) << "row " << i;
  }
}

TEST_F(PassiveTcpTest, OffByDefaultLeavesTheWireUntouched) {
  // A separate stack with the default config must never emit the option.
  sim::Simulation sim2{11};
  net::Host::Config cc;
  cc.name = "c2";
  cc.ip = net::IpAddress{10, 0, 1, 1};
  net::Host::Config sc;
  sc.name = "s2";
  sc.ip = net::IpAddress{10, 0, 1, 2};
  net::Host c2{sim2, cc}, s2{sim2, sc};
  net::Link::Config lc;
  lc.bandwidth_bps = 100e6;
  lc.propagation = sim::Duration::micros(5);
  net::Link l1{sim2, lc}, l2{sim2, lc};
  net::SwitchFabric fab{sim2};
  c2.attach_link(&l1, net::Link::Side::kA);
  fab.learn(c2.ip(), fab.add_port(&l1, net::Link::Side::kB));
  s2.attach_link(&l2, net::Link::Side::kB);
  fab.learn(s2.ip(), fab.add_port(&l2, net::Link::Side::kA));
  s2.tcp_listen(9000, [](std::shared_ptr<net::TcpConnection> conn) {
    conn->set_callbacks({});
  });
  auto conn = c2.tcp_connect({s2.ip(), 9000}, {});
  sim2.scheduler().run();
  EXPECT_FALSE(conn->timestamps_negotiated());
  const auto& cap = c2.capture();
  ASSERT_GE(cap.size(), 3u);
  for (std::size_t i = 0; i < cap.size(); ++i) {
    EXPECT_FALSE(cap.packet(i).ts.present) << "row " << i;
  }
}

class PassiveAsymmetricTest : public PassiveTcpTest {
 protected:
  void configure() override {}  // client offers...
};

TEST_F(PassiveAsymmetricTest, PeerWithoutTimestampsDeclinesTheOffer) {
  // Server host with timestamps off: SYN carries the offer, the SYN-ACK
  // does not echo it, and the connection runs bare.
  net::Host::Config sc;
  sc.name = "server-nots";
  sc.ip = net::IpAddress{10, 0, 0, 9};
  sc.tcp.timestamps = false;
  net::Host plain{*sim, sc};
  net::Link::Config lc;
  lc.bandwidth_bps = 100e6;
  lc.propagation = sim::Duration::micros(5);
  net::Link l3{*sim, lc};
  plain.attach_link(&l3, net::Link::Side::kB);
  fabric->learn(plain.ip(), fabric->add_port(&l3, net::Link::Side::kA));
  plain.tcp_listen(9000, [](std::shared_ptr<net::TcpConnection> conn) {
    conn->set_callbacks({});
  });
  bool connected = false;
  net::TcpCallbacks cbs;
  cbs.on_connect = [&] { connected = true; };
  auto conn = client->tcp_connect({plain.ip(), 9000}, std::move(cbs));
  run_all();
  EXPECT_TRUE(connected);
  EXPECT_FALSE(conn->timestamps_negotiated());
  const auto& cap = client->capture();
  ASSERT_GE(cap.size(), 3u);
  EXPECT_TRUE(cap.packet(0).ts.present);    // the offer
  EXPECT_FALSE(cap.packet(1).ts.present);   // declined
  EXPECT_FALSE(cap.packet(2).ts.present);   // and never used again
}

class PassiveDelackTest : public PassiveTcpTest {
 protected:
  void configure() override {
    tcp_config.ts_granule = sim::Duration::millis(1);
    tcp_config.delayed_ack = sim::Duration::millis(5);
  }
};

TEST_F(PassiveDelackTest, CumulativeDelayedAckEchoesEarliestSegment) {
  listen_sink();
  std::shared_ptr<net::TcpConnection> conn;
  net::TcpCallbacks cbs;
  cbs.on_connect = [&] {
    // First segment 10 ms in, so its TSval tick is past the handshake's
    // (the SYN anchors the shared tick-0 TSval otherwise); the second one
    // 2 ms later gets a fresh TSval, still before the 5 ms delayed-ACK
    // timer fires.
    sim->scheduler().schedule_after(sim::Duration::millis(10), [&] {
      conn->send(std::string(100, 'a'));
    });
    sim->scheduler().schedule_after(sim::Duration::millis(12), [&] {
      conn->send(std::string(100, 'b'));
    });
  };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();

  const auto& cap = client->capture();
  // Find the two data segments and the cumulative ACK that covers both.
  const net::Packet* seg1 = nullptr;
  const net::Packet* seg2 = nullptr;
  const net::Packet* cum_ack = nullptr;
  for (std::size_t i = 0; i < cap.size(); ++i) {
    const net::Packet& p = cap.packet(i);
    if (cap.direction(i) == net::CaptureDirection::kOutbound &&
        p.carries_data()) {
      (seg1 ? seg2 : seg1) = &p;
    }
    if (cap.direction(i) == net::CaptureDirection::kInbound &&
        p.is_pure_ack() && seg2 && p.ack == seg2->seq + 100) {
      cum_ack = &p;
    }
  }
  ASSERT_TRUE(seg1 && seg2 && cum_ack);
  ASSERT_NE(seg1->ts.tsval, seg2->ts.tsval);  // 2 ms apart at 1 ms granule
  // RFC 7323 4.3: TS.Recent stays at the segment occupying the left window
  // edge, so the cumulative ACK times the *first* segment (incl. the wait).
  EXPECT_EQ(cum_ack->ts.tsecr, seg1->ts.tsval);

  // The passive matcher therefore anchors the sample at segment 1 and its
  // RTT contains the delayed-ACK wait.
  PassiveRttEstimator::Config ec;
  ec.use_true_time = true;
  PassiveRttEstimator est{ec};
  est.consume(cap);
  const auto& samples = est.samples();
  bool found = false;
  for (const auto& s : samples) {
    if (s.tsval != seg1->ts.tsval) continue;
    found = true;
    EXPECT_GE(s.rtt.ns(), sim::Duration::millis(5).ns());
    EXPECT_LT(s.rtt.ns(), sim::Duration::millis(9).ns());
  }
  EXPECT_TRUE(found);
}

class PassiveWrapTest : public PassiveTcpTest {
 protected:
  void configure() override {
    tcp_config.ts_granule = sim::Duration::millis(1);
    // ~100 ticks of headroom: the TSval clock wraps 2^32 mid-run.
    tcp_config.ts_offset = 0xFFFFFFFFu - 100u;
  }
};

TEST_F(PassiveWrapTest, TsvalWraparoundKeepsMatchingAndEchoing) {
  // Echo server; five request/response exchanges spread over ~500 ms so
  // TSvals cross the 2^32 boundary.
  server->tcp_listen(9000, [](std::shared_ptr<net::TcpConnection> conn) {
    net::TcpCallbacks cbs;
    auto weak = std::weak_ptr<net::TcpConnection>(conn);
    cbs.on_data = [weak](const net::Payload& d) {
      if (auto c = weak.lock()) c->send(d);
    };
    conn->set_callbacks(std::move(cbs));
  });
  std::shared_ptr<net::TcpConnection> conn;
  int received = 0;
  net::TcpCallbacks cbs;
  cbs.on_data = [&](const net::Payload&) { ++received; };
  cbs.on_connect = [&] {
    for (int i = 0; i < 5; ++i) {
      sim->scheduler().schedule_after(sim::Duration::millis(100 * (i + 1)),
                                      [&] { conn->send(std::string(64, 'w')); });
    }
  };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();
  EXPECT_EQ(received, 5);

  const auto& cap = client->capture();
  bool wrapped_low = false, high = false;
  for (std::size_t i = 0; i < cap.size(); ++i) {
    const auto& ts = cap.packet(i).ts;
    if (!ts.present) continue;
    if (ts.tsval < 0x1000u) wrapped_low = true;
    if (ts.tsval > 0xFFFFFF00u) high = true;
  }
  EXPECT_TRUE(high);
  EXPECT_TRUE(wrapped_low);  // the clock really crossed 2^32

  PassiveRttEstimator::Config ec;
  ec.use_true_time = true;
  PassiveRttEstimator est{ec};
  est.consume(cap);
  EXPECT_GE(est.counters().samples, 5u);
  for (const auto& s : est.samples()) {
    EXPECT_GE(s.rtt.ns(), 0);
    EXPECT_LT(s.rtt.ns(), sim::Duration::seconds(1).ns());
  }
}

// ---------------------------------------------------------------------------
// Matcher edge cases (synthetic observations, no simulator)
// ---------------------------------------------------------------------------

net::Packet mk_packet(net::Endpoint src, net::Endpoint dst, std::uint32_t seq,
                      std::size_t len, std::uint32_t ack, std::uint32_t tsval,
                      std::uint32_t tsecr) {
  net::Packet p;
  p.protocol = net::Protocol::kTcp;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  p.ack = ack;
  p.flags.ack = ack != 0;
  p.flags.psh = len > 0;
  p.ts.present = true;
  p.ts.tsval = tsval;
  p.ts.tsecr = tsecr;
  if (len > 0) p.payload = net::Payload{std::vector<std::uint8_t>(len, 0x61)};
  return p;
}

const net::Endpoint kA{net::IpAddress{10, 0, 0, 1}, 40000};
const net::Endpoint kB{net::IpAddress{10, 0, 0, 2}, 80};

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::from_ns(ms * 1'000'000);
}

TEST(PassiveMatcher, RetransmissionPoisonsItsAnchorKarnStyle) {
  PassiveRttEstimator est;
  // Original data segment (tsval 100), retransmitted 200 ms later with a
  // fresh clock (tsval 300): the retransmission covers already-sent
  // sequence space, so its anchor must never yield a sample.
  est.observe(mk_packet(kA, kB, 1000, 100, 1, 100, 50), at_ms(0));
  est.observe(mk_packet(kA, kB, 1000, 100, 1, 300, 50), at_ms(200));
  EXPECT_EQ(est.counters().retransmit_poisoned, 1u);
  // Echo of the retransmission's TSval: suppressed, not sampled.
  est.observe(mk_packet(kB, kA, 1, 0, 1100, 301, 300), at_ms(250));
  EXPECT_EQ(est.counters().samples, 0u);
  EXPECT_EQ(est.counters().suppressed_samples, 1u);
  // An echo naming the *original* TSval is unambiguous (only the original
  // carried it) and still yields a sample.
  est.observe(mk_packet(kB, kA, 1, 0, 1100, 302, 100), at_ms(260));
  ASSERT_EQ(est.counters().samples, 1u);
  EXPECT_EQ(est.samples()[0].rtt.ns(), sim::Duration::millis(260).ns());
}

TEST(PassiveMatcher, CoarseClockRetransmitPoisonsTheOriginalToo) {
  PassiveRttEstimator est;
  // Retransmission reuses the original's TSval (coarse clock): the shared
  // anchor becomes ambiguous and is poisoned.
  est.observe(mk_packet(kA, kB, 1000, 100, 1, 100, 50), at_ms(0));
  est.observe(mk_packet(kA, kB, 1000, 100, 1, 100, 50), at_ms(5));
  EXPECT_EQ(est.counters().retransmit_poisoned, 1u);
  est.observe(mk_packet(kB, kA, 1, 0, 1100, 301, 100), at_ms(30));
  EXPECT_EQ(est.counters().samples, 0u);
  EXPECT_EQ(est.counters().suppressed_samples, 1u);
}

TEST(PassiveMatcher, ZeroWindowProbeDoesNotAnchorASample) {
  PassiveRttEstimator est;
  // Normal exchange establishes the sequence high-water mark.
  est.observe(mk_packet(kA, kB, 1000, 100, 1, 10, 5), at_ms(0));
  est.observe(mk_packet(kB, kA, 1, 0, 1100, 6, 10), at_ms(40));
  ASSERT_EQ(est.counters().samples, 1u);
  // Zero-window probe: one already-acked byte re-poked with a fresh TSval.
  // (The probe's own TSecr does echo the reverse flow's last anchor — an
  // idle-period echo whose sample is inflated by the quiet time; that is a
  // documented passive-RTT artifact, not the probe anchoring anything.)
  est.observe(mk_packet(kA, kB, 1099, 1, 1, 500, 6), at_ms(1000));
  EXPECT_EQ(est.counters().retransmit_poisoned, 1u);
  const std::uint64_t before = est.counters().samples;
  // The probe ACK echoes the probe's TSval: no sample may come of it.
  est.observe(mk_packet(kB, kA, 1, 0, 1100, 7, 500), at_ms(1040));
  EXPECT_EQ(est.counters().samples, before);
  EXPECT_EQ(est.counters().suppressed_samples, 1u);
}

TEST(PassiveMatcher, DuplicateTsvalsAnchorFirstSeenOnly) {
  PassiveRttEstimator est;
  // Three segments inside one clock tick share TSval 7; the echo matches
  // the first occurrence, so the RTT spans from the first segment.
  est.observe(mk_packet(kA, kB, 1000, 100, 1, 7, 3), at_ms(0));
  est.observe(mk_packet(kA, kB, 1100, 100, 1, 7, 3), at_ms(1));
  est.observe(mk_packet(kA, kB, 1200, 100, 1, 7, 3), at_ms(2));
  EXPECT_EQ(est.counters().duplicate_tsvals, 2u);
  est.observe(mk_packet(kB, kA, 3, 0, 1300, 4, 7), at_ms(50));
  ASSERT_EQ(est.counters().samples, 1u);
  EXPECT_EQ(est.samples()[0].rtt.ns(), sim::Duration::millis(50).ns());
  // A repeated cumulative ACK with the same TSecr adds no second sample.
  est.observe(mk_packet(kB, kA, 3, 0, 1300, 5, 7), at_ms(60));
  EXPECT_EQ(est.counters().samples, 1u);
}

TEST(PassiveMatcher, UnidirectionalVisibilityDegradesToZeroSamples) {
  PassiveRttEstimator est;
  // Only the reverse direction is visible (a tap behind an asymmetric
  // route): every echo misses its anchor, no sample is fabricated.
  est.observe(mk_packet(kB, kA, 1, 0, 1100, 6, 10), at_ms(40));
  est.observe(mk_packet(kB, kA, 1, 0, 1200, 7, 11), at_ms(80));
  EXPECT_EQ(est.counters().samples, 0u);
  EXPECT_EQ(est.counters().unmatched_echoes, 2u);
  EXPECT_EQ(est.counters().half_flows, 1u);
}

TEST(PassiveMatcher, WrapAdjacentTsvalsMatchByEquality) {
  PassiveRttEstimator est;
  // The clock wraps 2^32: ...0xFFFFFFFF, 0, 1... Matching is by equality,
  // so wrap-adjacent ticks pair up fine — except tick 0 itself, which
  // collides with the TSecr "no echo" sentinel and is a deliberate
  // one-tick blind spot (no sample, but also nothing wrong recorded).
  est.observe(mk_packet(kA, kB, 1000, 100, 0, 0xFFFFFFFFu, 0), at_ms(0));
  est.observe(mk_packet(kA, kB, 1100, 100, 0, 0u, 0), at_ms(1));
  est.observe(mk_packet(kA, kB, 1200, 100, 0, 1u, 0), at_ms(2));
  est.observe(mk_packet(kB, kA, 1, 0, 1300, 9, 0xFFFFFFFFu), at_ms(30));
  est.observe(mk_packet(kB, kA, 1, 0, 1300, 10, 0u), at_ms(31));
  est.observe(mk_packet(kB, kA, 1, 0, 1300, 11, 1u), at_ms(32));
  EXPECT_EQ(est.counters().samples, 2u);
  EXPECT_EQ(est.counters().unmatched_echoes, 0u);
  EXPECT_EQ(est.samples()[0].rtt.ns(), sim::Duration::millis(30).ns());
  EXPECT_EQ(est.samples()[1].rtt.ns(), sim::Duration::millis(30).ns());
}

// ---------------------------------------------------------------------------
// Live tap vs offline pcap: byte-identical reports
// ---------------------------------------------------------------------------

TEST_F(PassiveTcpTest, OfflinePcapReportMatchesLiveTapByteForByte) {
  server->tcp_listen(9000, [](std::shared_ptr<net::TcpConnection> conn) {
    net::TcpCallbacks cbs;
    auto weak = std::weak_ptr<net::TcpConnection>(conn);
    cbs.on_data = [weak](const net::Payload& d) {
      if (auto c = weak.lock()) c->send(d);
    };
    conn->set_callbacks(std::move(cbs));
  });
  std::shared_ptr<net::TcpConnection> conn;
  net::TcpCallbacks cbs;
  cbs.on_connect = [&] {
    for (int i = 0; i < 4; ++i) {
      sim->scheduler().schedule_after(sim::Duration::millis(10 * (i + 1)),
                                      [&] { conn->send(std::string(200, 'x')); });
    }
  };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();

  const auto& cap = client->capture();
  PassiveRttEstimator live;
  live.consume(cap);
  EXPECT_GE(live.counters().samples, 4u);

  std::stringstream pcap;
  net::PcapWriter::write(cap, pcap);
  const auto parsed = net::PcapReader::read(pcap);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.records.size(), cap.size());
  PassiveRttEstimator offline;
  offline.consume(parsed.records);

  EXPECT_EQ(live.report_json("roundtrip"), offline.report_json("roundtrip"));
}

// ---------------------------------------------------------------------------
// End-to-end appraisal against capture ground truth
// ---------------------------------------------------------------------------

TEST(PassiveAppraisal, LossFreeMedianErrorWithinOneTick) {
  PassiveScenario sc;
  sc.label = "fixed";
  sc.http_exchanges = 12;
  sc.ws_messages = 4;
  sc.think_gap = sim::Duration::millis(10);
  const PassiveAppraisalResult r = run_passive_appraisal(sc);
  EXPECT_EQ(r.http_responses, 12u);
  EXPECT_EQ(r.ws_echoes, 4u);
  EXPECT_GE(r.counters.samples, 10u);
  EXPECT_FALSE(r.pair_err_d1_ms.empty());
  EXPECT_FALSE(r.pair_err_d2_ms.empty());
  EXPECT_FALSE(r.exchange_err_ms.empty());
  EXPECT_FALSE(r.report_json.empty());
  // Acceptance: median |pair error| <= one TSval tick (1 ms). In practice
  // it is bounded by capture jitter (50 us) + quantization (1 us).
  EXPECT_LE(r.median_abs_pair_err_ms(), 1.0);
  EXPECT_LE(r.abs_pair_err_ms.quantile(0.5), 1.0);
  // The exchange-level check is looser (delayed ACKs ride along) but the
  // passive samples still track real transactions on a quiet testbed.
  for (double e : r.exchange_err_ms) EXPECT_LT(std::fabs(e), 10.0);
}

TEST(PassiveAppraisal, ServerTapSeesTheSameFlows) {
  PassiveScenario sc;
  sc.label = "far-end";
  sc.capture_point = CapturePoint::kServer;
  sc.http_exchanges = 6;
  sc.ws_messages = 0;
  const PassiveAppraisalResult r = run_passive_appraisal(sc);
  EXPECT_GE(r.counters.samples, 5u);
  EXPECT_LE(r.median_abs_pair_err_ms(), 1.0);
  EXPECT_FALSE(render_passive_boxplots({r}).empty());
}

TEST(PassiveAppraisal, JitteredScenarioStillMeetsTheBound) {
  PassiveScenario sc;
  sc.label = "netem-jitter";
  sc.testbed.server_jitter = sim::Duration::millis(3);
  sc.http_exchanges = 8;
  sc.ws_messages = 0;
  const PassiveAppraisalResult r = run_passive_appraisal(sc);
  EXPECT_GE(r.counters.samples, 6u);
  // Path jitter moves the true RTT, not the estimator's error against the
  // same packet pair: the bound holds on impaired-but-loss-free paths too.
  EXPECT_LE(r.median_abs_pair_err_ms(), 1.0);
}

}  // namespace
}  // namespace bnm::passive
