#include <gtest/gtest.h>

#include "sim/time.h"

namespace bnm::sim {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::micros(1).ns(), 1'000);
  EXPECT_EQ(Duration::nanos(1).ns(), 1);
  EXPECT_EQ(Duration::minutes(2).ns(), Duration::seconds(120).ns());
}

TEST(Duration, FractionalFactoriesRound) {
  EXPECT_EQ(Duration::from_millis_f(1.5).ns(), 1'500'000);
  EXPECT_EQ(Duration::from_millis_f(-1.5).ns(), -1'500'000);
  EXPECT_EQ(Duration::from_seconds_f(0.25).ns(), 250'000'000);
  // Round-to-nearest, not truncation.
  EXPECT_EQ(Duration::from_millis_f(0.0000006).ns(), 1);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(10);
  const Duration b = Duration::millis(4);
  EXPECT_EQ((a + b).ms_f(), 14.0);
  EXPECT_EQ((a - b).ms_f(), 6.0);
  EXPECT_EQ((-a).ms_f(), -10.0);
  EXPECT_EQ((a * 3).ms_f(), 30.0);
  EXPECT_EQ((3 * a).ms_f(), 30.0);
  EXPECT_EQ((a / 2).ms_f(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::millis(1);
  d += Duration::millis(2);
  EXPECT_EQ(d.ms_f(), 3.0);
  d -= Duration::millis(5);
  EXPECT_EQ(d.ms_f(), -2.0);
  EXPECT_TRUE(d.is_negative());
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
  EXPECT_GT(Duration::zero(), Duration::millis(-1));
}

TEST(Duration, Scaled) {
  EXPECT_EQ(Duration::millis(10).scaled(0.5).ms_f(), 5.0);
  EXPECT_EQ(Duration::millis(10).scaled(1.25).ms_f(), 12.5);
}

TEST(Duration, QuantizedFloorPositive) {
  const Duration g = Duration::millis(15);
  EXPECT_EQ(Duration::millis(0).quantized_floor(g), Duration::millis(0));
  EXPECT_EQ(Duration::millis(14).quantized_floor(g), Duration::millis(0));
  EXPECT_EQ(Duration::millis(15).quantized_floor(g), Duration::millis(15));
  EXPECT_EQ(Duration::millis(44).quantized_floor(g), Duration::millis(30));
}

TEST(Duration, QuantizedFloorNegativeIsFloorNotTrunc) {
  const Duration g = Duration::millis(10);
  EXPECT_EQ(Duration::millis(-1).quantized_floor(g), Duration::millis(-10));
  EXPECT_EQ(Duration::millis(-10).quantized_floor(g), Duration::millis(-10));
  EXPECT_EQ(Duration::millis(-11).quantized_floor(g), Duration::millis(-20));
}

TEST(Duration, QuantizedFloorTrivialGranule) {
  EXPECT_EQ(Duration::nanos(1234).quantized_floor(Duration::nanos(1)),
            Duration::nanos(1234));
  EXPECT_EQ(Duration::nanos(1234).quantized_floor(Duration::zero()),
            Duration::nanos(1234));
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::millis(50).to_string(), "50ms");
  EXPECT_EQ(Duration::from_millis_f(15.625).to_string(), "15.625ms");
  EXPECT_EQ(Duration::micros(3).to_string(), "3us");
  EXPECT_EQ(Duration::nanos(7).to_string(), "7ns");
  EXPECT_EQ(Duration::from_millis_f(-3.125).to_string(), "-3.125ms");
}

TEST(TimePoint, ArithmeticAndOrdering) {
  const TimePoint t0 = TimePoint::epoch();
  const TimePoint t1 = t0 + Duration::millis(5);
  EXPECT_EQ((t1 - t0).ms_f(), 5.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t1 - Duration::millis(5), t0);
  TimePoint t = t0;
  t += Duration::seconds(1);
  EXPECT_EQ(t.ns_since_epoch(), 1'000'000'000);
}

TEST(TimePoint, QuantizedFloor) {
  const TimePoint t = TimePoint::epoch() + Duration::from_millis_f(52.3);
  EXPECT_DOUBLE_EQ(t.quantized_floor(Duration::millis(15)).ms_since_epoch_f(),
                   45.0);
  EXPECT_DOUBLE_EQ(t.quantized_floor(Duration::millis(1)).ms_since_epoch_f(),
                   52.0);
}

// Property: quantization never moves a point forward and never by >= g.
class QuantizeSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(QuantizeSweep, FloorWithinOneGranule) {
  const Duration g = Duration::micros(GetParam());
  for (std::int64_t ns = -50'000'000; ns <= 50'000'000; ns += 1'234'567) {
    const TimePoint t = TimePoint::from_ns(ns);
    const TimePoint q = t.quantized_floor(g);
    EXPECT_LE(q, t);
    EXPECT_LT(t - q, g);
    EXPECT_EQ((q - TimePoint::epoch()).ns() % g.ns(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Granules, QuantizeSweep,
                         ::testing::Values(1000, 15625, 1000000, 15625000));

}  // namespace
}  // namespace bnm::sim
