#include <gtest/gtest.h>

#include "sim/random.h"
#include "stats/boxplot.h"

namespace bnm::stats {
namespace {

TEST(BoxStats, SimpleNoOutliers) {
  const BoxStats b = box_stats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 5.0);
  EXPECT_EQ(b.outlier_count(), 0u);
}

TEST(BoxStats, TukeyFenceFlagsOutliers) {
  // Base {1..9}: q1=3, q3=7, iqr=4, fences at [-3, 13]. 30 is an outlier.
  const BoxStats b = box_stats({1, 2, 3, 4, 5, 6, 7, 8, 9, 30});
  ASSERT_EQ(b.outliers_hi.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers_hi[0], 30.0);
  EXPECT_LT(b.whisker_hi, 30.0);
}

TEST(BoxStats, LowOutliers) {
  const BoxStats b = box_stats({-40, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  ASSERT_EQ(b.outliers_lo.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers_lo[0], -40.0);
  EXPECT_GT(b.whisker_lo, -40.0);
}

TEST(BoxStats, WhiskersAreExtremeInliers) {
  const std::vector<double> xs{0, 10, 11, 12, 13, 14, 15, 16, 100};
  const BoxStats b = box_stats(xs);
  // Fences: q1=11, q3=15, iqr=4 -> [5, 21]; 0 and 100 are outliers.
  EXPECT_DOUBLE_EQ(b.whisker_lo, 10.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 16.0);
  EXPECT_EQ(b.outlier_count(), 2u);
}

TEST(BoxStats, SingleValue) {
  const BoxStats b = box_stats({7.5});
  EXPECT_DOUBLE_EQ(b.median, 7.5);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 7.5);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 7.5);
  EXPECT_EQ(b.outlier_count(), 0u);
}

TEST(BoxStats, IdenticalValues) {
  const BoxStats b = box_stats(std::vector<double>(20, 3.0));
  EXPECT_DOUBLE_EQ(b.iqr(), 0.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 3.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 3.0);
  EXPECT_EQ(b.outlier_count(), 0u);
}

TEST(BoxStats, CountPreserved) {
  const BoxStats b = box_stats({5, 1, 9, 3});
  EXPECT_EQ(b.n, 4u);
}

// Property over random samples: invariants of the paper's plot convention.
class BoxProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoxProperty, Invariants) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam() * 1337)};
  std::vector<double> xs;
  const int n = 50;  // the paper's repetition count
  for (int i = 0; i < n; ++i) {
    // Mix of body and occasional heavy tail, like real overhead data.
    xs.push_back(rng.chance(0.1) ? rng.lognormal_med(40, 1.0)
                                 : rng.normal(5, 2));
  }
  const BoxStats b = box_stats(xs);

  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.whisker_lo, b.q1);
  EXPECT_GE(b.whisker_hi, b.q3);

  const double lo_fence = b.q1 - 1.5 * b.iqr();
  const double hi_fence = b.q3 + 1.5 * b.iqr();
  EXPECT_GE(b.whisker_lo, lo_fence);
  EXPECT_LE(b.whisker_hi, hi_fence);
  for (double o : b.outliers_lo) EXPECT_LT(o, lo_fence);
  for (double o : b.outliers_hi) EXPECT_GT(o, hi_fence);

  // Outliers plus inliers account for every sample.
  std::size_t inliers = 0;
  for (double x : xs) {
    if (x >= lo_fence && x <= hi_fence) ++inliers;
  }
  EXPECT_EQ(inliers + b.outlier_count(), xs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace bnm::stats
