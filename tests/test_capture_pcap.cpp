#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/capture.h"
#include "net/pcap_writer.h"
#include "sim/simulation.h"

namespace bnm::net {
namespace {

Packet tcp_packet(Endpoint src, Endpoint dst, TcpFlags flags,
                  const std::string& payload = "") {
  Packet p;
  p.protocol = Protocol::kTcp;
  p.src = src;
  p.dst = dst;
  p.flags = flags;
  p.payload = to_bytes(payload);
  return p;
}

const Endpoint kClient{IpAddress{10, 0, 0, 1}, 50000};
const Endpoint kServer{IpAddress{10, 0, 0, 2}, 80};

TEST(PacketCapture, RecordsBothDirectionsWithTimestamps) {
  sim::Simulation sim{1};
  PacketCapture cap{sim};
  sim.scheduler().schedule_after(sim::Duration::millis(5), [&] {
    cap.record(CaptureDirection::kOutbound,
               tcp_packet(kClient, kServer, {.ack = true, .psh = true}, "req"));
  });
  sim.scheduler().schedule_after(sim::Duration::millis(55), [&] {
    cap.record(CaptureDirection::kInbound,
               tcp_packet(kServer, kClient, {.ack = true, .psh = true}, "resp"));
  });
  sim.scheduler().run();
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap.direction(0), CaptureDirection::kOutbound);
  EXPECT_EQ(cap.direction(1), CaptureDirection::kInbound);
  EXPECT_EQ((cap.timestamp(1) - cap.timestamp(0)).ms_f(), 50.0);
}

TEST(PacketCapture, DisabledCaptureDropsRecords) {
  sim::Simulation sim{2};
  PacketCapture::Config cfg;
  cfg.enabled = false;
  PacketCapture cap{sim, cfg};
  cap.record(CaptureDirection::kInbound, tcp_packet(kServer, kClient, {}));
  EXPECT_EQ(cap.size(), 0u);
}

TEST(PacketCapture, TimestampJitterBoundedAndNonNegative) {
  sim::Simulation sim{3};
  PacketCapture::Config cfg;
  cfg.timestamp_jitter = sim::Duration::from_millis_f(0.3);
  PacketCapture cap{sim, cfg};
  for (int i = 0; i < 200; ++i) {
    cap.record(CaptureDirection::kOutbound, tcp_packet(kClient, kServer, {}));
  }
  for (std::size_t i = 0; i < cap.size(); ++i) {
    const auto err = cap.timestamp(i) - cap.true_time(i);
    EXPECT_GE(err, sim::Duration::zero());
    EXPECT_LT(err, sim::Duration::from_millis_f(0.3));
  }
}

TEST(PacketCapture, FiltersSelectExpectedRecords) {
  sim::Simulation sim{4};
  PacketCapture cap{sim};
  cap.record(CaptureDirection::kOutbound,
             tcp_packet(kClient, kServer, {.syn = true}));
  cap.record(CaptureDirection::kOutbound,
             tcp_packet(kClient, kServer, {.ack = true, .psh = true}, "req"));
  cap.record(CaptureDirection::kInbound,
             tcp_packet(kServer, kClient, {.ack = true, .psh = true}, "resp"));
  cap.record(CaptureDirection::kInbound,
             tcp_packet(kServer, kClient, {.ack = true}));  // pure ack

  EXPECT_EQ(cap.select(PacketCapture::outbound_data()).size(), 1u);
  EXPECT_EQ(cap.select(PacketCapture::inbound_data()).size(), 1u);
  EXPECT_EQ(cap.select(PacketCapture::tcp_syn()).size(), 1u);
  EXPECT_EQ(cap.select(PacketCapture::to_port(80)).size(), 2u);
  EXPECT_EQ(cap.select(PacketCapture::between(kClient, kServer)).size(), 4u);

  const auto first = cap.first(PacketCapture::inbound_data());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(to_string(first->packet.payload), "resp");
  const auto last = cap.last(PacketCapture::to_port(80));
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->packet.carries_data());
}

TEST(PacketCapture, DistinctConnectionsDeduplicatesRetransmits) {
  sim::Simulation sim{5};
  PacketCapture cap{sim};
  Packet syn = tcp_packet(kClient, kServer, {.syn = true});
  syn.seq = 1000;
  cap.record(CaptureDirection::kOutbound, syn);
  cap.record(CaptureDirection::kOutbound, syn);  // retransmission
  Packet syn2 = syn;
  syn2.src.port = 50001;
  cap.record(CaptureDirection::kOutbound, syn2);
  // SYN-ACK must not count as a new connection.
  Packet synack = tcp_packet(kServer, kClient, {.syn = true, .ack = true});
  cap.record(CaptureDirection::kInbound, synack);
  EXPECT_EQ(cap.distinct_connections(), 2u);
}

TEST(PacketCapture, ClearEmpties) {
  sim::Simulation sim{6};
  PacketCapture cap{sim};
  cap.record(CaptureDirection::kOutbound, tcp_packet(kClient, kServer, {}));
  cap.clear();
  EXPECT_EQ(cap.size(), 0u);
}

// ------------------------------------------------------------------- pcap

TEST(PcapWriter, InternetChecksumKnownVector) {
  // RFC 1071 example bytes.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(PcapWriter::internet_checksum(data, sizeof data), 0x220d);
}

TEST(PcapWriter, SynthesizedTcpFrameFields) {
  Packet p = tcp_packet(kClient, kServer, {.syn = true}, "");
  p.seq = 0x01020304;
  const std::vector<std::uint8_t> f = PcapWriter::synthesize_frame(p);
  ASSERT_EQ(f.size(), kIpHeaderBytes + kTcpHeaderBytes);
  EXPECT_EQ(static_cast<unsigned char>(f[0]), 0x45);  // IPv4, IHL 5
  EXPECT_EQ(static_cast<unsigned char>(f[9]), 6);     // protocol TCP
  // Source/destination addresses in network order.
  EXPECT_EQ(static_cast<unsigned char>(f[12]), 10);
  EXPECT_EQ(static_cast<unsigned char>(f[15]), 1);
  EXPECT_EQ(static_cast<unsigned char>(f[19]), 2);
  // TCP ports.
  EXPECT_EQ((static_cast<unsigned char>(f[20]) << 8) |
                static_cast<unsigned char>(f[21]),
            50000);
  EXPECT_EQ((static_cast<unsigned char>(f[22]) << 8) |
                static_cast<unsigned char>(f[23]),
            80);
  // Sequence number.
  EXPECT_EQ(static_cast<unsigned char>(f[24]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(f[27]), 0x04);
  // SYN flag bit.
  EXPECT_EQ(static_cast<unsigned char>(f[33]) & 0x02, 0x02);
  // IPv4 header checksum verifies to zero.
  EXPECT_EQ(PcapWriter::internet_checksum(
                reinterpret_cast<const std::uint8_t*>(f.data()),
                kIpHeaderBytes),
            0);
}

TEST(PcapWriter, SynthesizedUdpFrame) {
  Packet p;
  p.protocol = Protocol::kUdp;
  p.src = {IpAddress{10, 0, 0, 1}, 1234};
  p.dst = {IpAddress{10, 0, 0, 2}, 9001};
  p.payload = to_bytes("ping");
  const std::vector<std::uint8_t> f = PcapWriter::synthesize_frame(p);
  ASSERT_EQ(f.size(), kIpHeaderBytes + kUdpHeaderBytes + 4);
  EXPECT_EQ(static_cast<unsigned char>(f[9]), 17);  // protocol UDP
  // UDP length field = header + payload.
  EXPECT_EQ((static_cast<unsigned char>(f[24]) << 8) |
                static_cast<unsigned char>(f[25]),
            12);
  EXPECT_EQ(std::string(f.begin() + kIpHeaderBytes + kUdpHeaderBytes, f.end()),
            "ping");
}

TEST(PcapWriter, StreamLayout) {
  sim::Simulation sim{7};
  PacketCapture cap{sim};
  sim.scheduler().schedule_after(sim::Duration::millis(1), [&] {
    cap.record(CaptureDirection::kOutbound,
               tcp_packet(kClient, kServer, {.ack = true, .psh = true}, "hi"));
  });
  sim.scheduler().run();

  std::ostringstream out;
  const std::size_t written = PcapWriter::write(cap, out);
  const std::string bytes = out.str();
  EXPECT_EQ(written, bytes.size());
  // Global header: magic a1 b2 c3 d4 little-endian, version 2.4.
  ASSERT_GE(bytes.size(), 24u + 16u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0xa1);
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 2);  // version major
  EXPECT_EQ(static_cast<unsigned char>(bytes[6]), 4);  // version minor
  // Record header: ts_usec = 1000 for a 1 ms timestamp.
  const auto u32 = [&](std::size_t off) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + 1])) << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + 2])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + 3])) << 24);
  };
  EXPECT_EQ(u32(24), 0u);     // ts_sec
  EXPECT_EQ(u32(28), 1000u);  // ts_usec
  const std::uint32_t incl_len = u32(32);
  EXPECT_EQ(incl_len, kIpHeaderBytes + kTcpHeaderBytes + 2);
  EXPECT_EQ(bytes.size(), 24u + 16u + incl_len);
}

TEST(PcapWriter, WriteFileRoundtrip) {
  sim::Simulation sim{8};
  PacketCapture cap{sim};
  cap.record(CaptureDirection::kOutbound, tcp_packet(kClient, kServer, {}));
  const std::string path = ::testing::TempDir() + "/bnm_test.pcap";
  const std::size_t written = PcapWriter::write_file(cap, path);
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good());
  in.seekg(0, std::ios::end);
  EXPECT_EQ(static_cast<std::size_t>(in.tellg()), written);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bnm::net
