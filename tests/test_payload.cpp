// Payload / PayloadBuffer semantics: refcounted aliasing, copy-on-write
// mutation isolation, zero-copy delivery through TCP reassembly, and the
// capture tap's snap-len truncation.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/capture.h"
#include "net/packet.h"
#include "net/payload.h"
#include "net_fixture.h"

namespace bnm::net {
namespace {

using test::TwoHostFixture;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(PayloadTest, CopyAliasesTheSameBuffer) {
  Payload a{bytes_of("shared bytes")};
  Payload b = a;
  Payload c;
  c = b;
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_TRUE(a.shares_buffer_with(c));
  EXPECT_EQ(a.buffer_use_count(), 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(to_string(c), "shared bytes");
}

TEST(PayloadTest, SubviewsAliasWithoutCopying) {
  const auto deep_before = PayloadStats::deep_copy_bytes();
  Payload whole{bytes_of("0123456789")};
  Payload mid = whole.subview(2, 5);
  Payload head = whole.first(3);
  Payload tail = whole.skip(7);
  EXPECT_EQ(to_string(mid), "23456");
  EXPECT_EQ(to_string(head), "012");
  EXPECT_EQ(to_string(tail), "789");
  EXPECT_TRUE(mid.shares_buffer_with(whole));
  EXPECT_TRUE(head.shares_buffer_with(tail));
  // to_string() materializes (5 + 3 + 3 bytes); the views themselves
  // copied nothing else.
  EXPECT_EQ(PayloadStats::deep_copy_bytes() - deep_before, 11u);
}

TEST(PayloadTest, MutationIsIsolatedFromOtherHolders) {
  Payload original{bytes_of("immutable?")};
  Payload copy = original;
  ASSERT_TRUE(copy.shares_buffer_with(original));

  // COW: writing through the copy clones the buffer first.
  std::uint8_t* w = copy.mutable_bytes();
  std::memcpy(w, "MUTATED!!!", copy.size());
  EXPECT_EQ(to_string(copy), "MUTATED!!!");
  EXPECT_EQ(to_string(original), "immutable?");
  EXPECT_FALSE(copy.shares_buffer_with(original));
}

TEST(PayloadTest, MutatingASubviewLeavesTheParentIntact) {
  Payload whole{bytes_of("abcdef")};
  Payload mid = whole.subview(1, 3);
  mid.mutable_bytes()[0] = 'X';
  EXPECT_EQ(to_string(mid), "Xcd");
  EXPECT_EQ(to_string(whole), "abcdef");
}

TEST(PayloadTest, UniquelyOwnedFullViewMutatesInPlace) {
  Payload only{bytes_of("unique")};
  const auto deep_before = PayloadStats::deep_copy_bytes();
  only.mutable_bytes()[0] = 'U';
  EXPECT_EQ(to_string(only) , "Unique");
  // No other holder: no clone was needed (to_string's copy is counted, so
  // compare against exactly that).
  EXPECT_EQ(PayloadStats::deep_copy_bytes() - deep_before, only.size());
}

TEST(PayloadTest, RemovePrefixTrimsTheViewInPlace) {
  Payload p{bytes_of("headbody")};
  Payload alias = p;
  p.remove_prefix(4);
  EXPECT_EQ(to_string(p), "body");
  EXPECT_EQ(to_string(alias), "headbody");  // other views are untouched
  p.remove_prefix(100);
  EXPECT_TRUE(p.empty());
}

TEST(PayloadTest, GatherConcatenatesViews) {
  const Payload parts[] = {Payload{bytes_of("aa")}, Payload{bytes_of("bbb")},
                           Payload{bytes_of("cc")}};
  const Payload all = gather(parts, 3, 0, 7);
  EXPECT_EQ(to_string(all), "aabbbcc");
  const Payload middle = gather(parts, 3, 1, 4);
  EXPECT_EQ(to_string(middle), "abbb");
}

class PayloadTcpTest : public TwoHostFixture {};

// Delivery through segmentation + reassembly is zero-copy end to end: the
// bytes the server's application sees live in the same buffer the client
// adopted in send() — every hop (link, switch, capture, reassembly) held a
// view, never a copy.
TEST_F(PayloadTcpTest, ReassemblyDeliversViewsOfTheSendersBuffer) {
  std::vector<Payload> delivered;
  server->tcp_listen(9000, [&](std::shared_ptr<TcpConnection> conn) {
    TcpCallbacks cbs;
    cbs.on_data = [&](const Payload& d) { delivered.push_back(d); };
    conn->set_callbacks(std::move(cbs));
  });

  TcpCallbacks cbs;
  std::shared_ptr<TcpConnection> conn;
  const std::size_t total = 4000;  // > 2 x MSS: forces segmentation
  Payload sent{std::vector<std::uint8_t>(total, 0x5a)};
  cbs.on_connect = [&] { conn->send(sent); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();

  ASSERT_GE(delivered.size(), 2u) << "expected multiple MSS-sized segments";
  std::size_t got = 0;
  for (const auto& d : delivered) {
    EXPECT_TRUE(d.shares_buffer_with(sent))
        << "delivered segment is a deep copy, not a view";
    got += d.size();
  }
  EXPECT_EQ(got, total);
}

// A held delivery view stays valid and unchanged after the sender's side
// mutates its own handle — COW isolation across the whole stack.
TEST_F(PayloadTcpTest, HeldDeliveryViewSurvivesSenderMutation) {
  std::vector<Payload> delivered;
  server->tcp_listen(9000, [&](std::shared_ptr<TcpConnection> conn) {
    TcpCallbacks cbs;
    cbs.on_data = [&](const Payload& d) { delivered.push_back(d); };
    conn->set_callbacks(std::move(cbs));
  });

  TcpCallbacks cbs;
  std::shared_ptr<TcpConnection> conn;
  Payload sent{bytes_of("do not change delivered bytes")};
  cbs.on_connect = [&] { conn->send(sent); };
  conn = client->tcp_connect(server_ep(9000), std::move(cbs));
  run_all();

  ASSERT_FALSE(delivered.empty());
  std::memset(sent.mutable_bytes(), 'X', sent.size());
  EXPECT_EQ(to_string(delivered.front()), "do not change delivered bytes");
}

class SnapLenTest : public TwoHostFixture {};

TEST(CaptureSnapLen, TruncatesStoredPayloadKeepsWireLength) {
  sim::Simulation sim{1};
  PacketCapture::Config cfg;
  cfg.snap_len = 4;
  PacketCapture cap{sim, cfg};

  Packet p;
  p.protocol = Protocol::kUdp;
  p.src = {IpAddress{10, 0, 0, 1}, 1000};
  p.dst = {IpAddress{10, 0, 0, 2}, 2000};
  p.payload = bytes_of("truncate me please");
  cap.record(CaptureDirection::kOutbound, p);

  ASSERT_EQ(cap.size(), 1u);
  const CaptureRecord rec = cap.at(0);
  EXPECT_EQ(rec.packet.payload.size(), 4u);
  EXPECT_EQ(to_string(rec.packet.payload), "trun");
  EXPECT_EQ(rec.wire_payload_len, 18u);
  EXPECT_TRUE(rec.carries_data());
  // The truncated record still shares the in-flight packet's buffer.
  EXPECT_TRUE(rec.packet.payload.shares_buffer_with(p.payload));
}

TEST(CaptureSnapLen, ZeroSnapKeepsHeadersOnly) {
  sim::Simulation sim{1};
  PacketCapture::Config cfg;
  cfg.snap_len = 0;
  PacketCapture cap{sim, cfg};

  Packet p;
  p.protocol = Protocol::kUdp;
  p.src = {IpAddress{10, 0, 0, 1}, 1000};
  p.dst = {IpAddress{10, 0, 0, 2}, 2000};
  p.payload = bytes_of("payload");
  cap.record(CaptureDirection::kInbound, p);

  const CaptureRecord rec = cap.at(0);
  EXPECT_TRUE(rec.packet.payload.empty());
  EXPECT_EQ(rec.wire_payload_len, 7u);
  // carries_data() answers for the wire packet, not the truncated record,
  // so data/ack classification is snap-proof.
  EXPECT_TRUE(rec.carries_data());
  EXPECT_EQ(cap.select(PacketCapture::inbound_data()).size(), 1u);
}

TEST_F(SnapLenTest, DefaultCaptureSharesPayloadBuffers) {
  std::shared_ptr<UdpSocket> srv =
      server->udp_open(9001, [](Endpoint, const Payload&) {});
  auto cli = client->udp_open([](Endpoint, const Payload&) {});
  Payload probe{bytes_of("snapless probe")};
  cli->send_to(server_ep(9001), probe);
  run_all();

  const auto outs = client->capture().select(PacketCapture::outbound_data());
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs.front().packet.payload.size(), 14u);
  EXPECT_EQ(outs.front().wire_payload_len, 14u);
  EXPECT_TRUE(outs.front().packet.payload.shares_buffer_with(probe));
}

}  // namespace
}  // namespace bnm::net
