// Tests for the observability layer (src/obs + the structured sim::Trace):
// registry shard-merge determinism, histogram bucket edges, trace exporter
// round-trips through obs::json, ProfScope nesting, the disabled-path
// no-allocation contract, and the TraceView index-backed filters.
//
// These live in their own executable (bnm_obs_tests, ctest label `obs`)
// because the no-allocation test replaces the global operator new, which
// must not leak into the tier1 binary.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace_export.h"
#include "sim/time.h"
#include "sim/trace.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new in this binary bumps it.
// The disabled-path test warms up the TLS structures, then asserts zero
// allocations across many disabled ProfScope entries and Counter::adds.
static std::atomic<std::uint64_t> g_allocs{0};

// GCC pairs our replaced operator new (malloc-backed) with std::free and
// flags a mismatch; the pairing is intentional and correct for a full
// global replacement, so silence the false positive for this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using bnm::obs::MetricsRegistry;
using bnm::sim::Duration;
using bnm::sim::TimePoint;
using bnm::sim::Trace;
using bnm::sim::TraceEventKind;

TEST(Metrics, CounterAddAndReset) {
  auto& reg = MetricsRegistry::instance();
  const auto c = reg.counter("test.obs.counter", "ops", "test counter");
  c.reset();
  EXPECT_EQ(c.total(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.total(), 42u);
  // Registration is idempotent: same name + kind is the same instrument.
  const auto again = reg.counter("test.obs.counter", "ops", "test counter");
  again.add(8);
  EXPECT_EQ(c.total(), 50u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Metrics, GaugeKeepsHighWaterMark) {
  auto& reg = MetricsRegistry::instance();
  const auto g = reg.gauge("test.obs.gauge", "bytes", "test gauge");
  g.reset();
  g.record_max(10);
  g.record_max(7);  // lower: ignored
  EXPECT_EQ(g.max_value(), 10u);
  g.record_max(1000);
  EXPECT_EQ(g.max_value(), 1000u);
}

TEST(Metrics, HistogramBucketEdges) {
  auto& reg = MetricsRegistry::instance();
  const auto h = reg.histogram("test.obs.hist", "us", "test histogram",
                               {10, 20, 50});
  h.reset();
  // A sample lands in the first bucket whose bound is >= value; strictly
  // above the last bound overflows.
  h.observe(0);    // bucket 0 (<= 10)
  h.observe(10);   // bucket 0: bound is inclusive
  h.observe(11);   // bucket 1 (<= 20)
  h.observe(20);   // bucket 1
  h.observe(21);   // bucket 2 (<= 50)
  h.observe(50);   // bucket 2
  h.observe(51);   // overflow
  h.observe(5000); // overflow
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 21 + 50 + 51 + 5000);

  const auto snap = reg.snapshot();
  const auto* v = snap.find("test.obs.hist");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->bounds, (std::vector<std::uint64_t>{10, 20, 50}));
  ASSERT_EQ(v->buckets.size(), 4u);
  EXPECT_EQ(v->buckets[0], 2u);
  EXPECT_EQ(v->buckets[1], 2u);
  EXPECT_EQ(v->buckets[2], 2u);
  EXPECT_EQ(v->buckets[3], 2u);  // overflow
  EXPECT_EQ(v->value, 8u);       // histogram `value` is the count
}

// The registry's core guarantee: a snapshot of state built by several
// threads is byte-identical to the same totals recorded serially — sums
// and maxes are order-independent, and snapshots sort by name.
TEST(Metrics, ShardMergeIsDeterministic) {
  auto& reg = MetricsRegistry::instance();
  const auto c = reg.counter("test.obs.merge.counter", "ops", "merge test");
  const auto g = reg.gauge("test.obs.merge.gauge", "bytes", "merge test");
  const auto h =
      reg.histogram("test.obs.merge.hist", "us", "merge test", {100, 1000});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;

  reg.reset();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      c.add(static_cast<std::uint64_t>(i));
      g.record_max(static_cast<std::uint64_t>(t * 10000 + i));
      h.observe(static_cast<std::uint64_t>(i));
    }
  }
  const std::string serial = reg.snapshot().to_json();

  reg.reset();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(static_cast<std::uint64_t>(i));
        g.record_max(static_cast<std::uint64_t>(t * 10000 + i));
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::string parallel = reg.snapshot().to_json();

  EXPECT_EQ(serial, parallel);
  // And the snapshot itself is stable: two merges of the same state agree.
  EXPECT_EQ(parallel, reg.snapshot().to_json());

  // The JSON parses back with the documented shape.
  auto doc = bnm::obs::json::parse(parallel);
  ASSERT_TRUE(doc.has_value());
  const auto* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  ASSERT_FALSE(metrics->items().empty());
}

// Live-thread shards and retired (exited-thread) shards must merge to the
// same totals: snapshot before the workers exit == snapshot after.
TEST(Metrics, RetiredShardsFoldExactly) {
  auto& reg = MetricsRegistry::instance();
  const auto c = reg.counter("test.obs.retire.counter", "ops", "retire test");
  reg.reset();

  std::atomic<bool> go{false};
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      c.add(111);
      done.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
    });
  }
  while (done.load() != 3) std::this_thread::yield();
  const std::uint64_t live_total = c.total();  // workers still alive
  go.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(live_total, 333u);
  EXPECT_EQ(c.total(), 333u);  // folded into retired, nothing lost
}

TEST(Prof, ScopeNestingAttributesTimeToEachSite) {
  namespace prof = bnm::obs::prof;
  prof::reset();
  prof::set_enabled(true);

  auto inner = [] { BNM_PROF_SCOPE("test.obs.inner"); };
  constexpr int kOuter = 5;
  constexpr int kInnerPerOuter = 3;
  for (int i = 0; i < kOuter; ++i) {
    BNM_PROF_SCOPE("test.obs.outer");
    for (int j = 0; j < kInnerPerOuter; ++j) inner();
  }
  prof::set_enabled(false);

  const auto entries = prof::report();
  const prof::ProfEntry* outer = nullptr;
  const prof::ProfEntry* inner_e = nullptr;
  for (const auto& e : entries) {
    if (e.name == "test.obs.outer") outer = &e;
    if (e.name == "test.obs.inner") inner_e = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner_e, nullptr);
  EXPECT_EQ(outer->calls, static_cast<std::uint64_t>(kOuter));
  EXPECT_EQ(inner_e->calls,
            static_cast<std::uint64_t>(kOuter * kInnerPerOuter));
  // The outer scope contains every inner scope, so it cannot be cheaper.
  EXPECT_GE(outer->total_ns, inner_e->total_ns);
  EXPECT_GE(outer->max_ns, outer->total_ns / outer->calls);

  prof::reset();
  // reset() zeroes: zero-call rows are dropped from the report.
  for (const auto& e : prof::report()) {
    EXPECT_NE(e.name, "test.obs.outer");
    EXPECT_NE(e.name, "test.obs.inner");
  }
}

TEST(Prof, DisabledScopesRecordNothing) {
  namespace prof = bnm::obs::prof;
  prof::reset();
  ASSERT_FALSE(prof::enabled());
  for (int i = 0; i < 100; ++i) {
    BNM_PROF_SCOPE("test.obs.disabled");
  }
  for (const auto& e : prof::report()) {
    EXPECT_NE(e.name, "test.obs.disabled");
  }
}

// The zero-overhead-when-disabled contract (docs/OBSERVABILITY.md):
// a disabled ProfScope, a Counter::add and a disabled Trace guard must not
// allocate. Warm up the thread-local structures first — the assertion is
// about the steady state, not first-use registration.
TEST(Prof, DisabledPathDoesNotAllocate) {
  namespace prof = bnm::obs::prof;
  auto& reg = MetricsRegistry::instance();
  const auto c = reg.counter("test.obs.noalloc", "ops", "no-alloc test");

  bnm::sim::Trace trace;
  ASSERT_FALSE(trace.enabled());
  ASSERT_FALSE(prof::enabled());

  const auto body = [&] {
    BNM_PROF_SCOPE("test.obs.noalloc.scope");
    c.add(2);
    if (trace.enabled()) {
      trace.emit(TimePoint::epoch(), "never", "never");
    }
  };
  // Warm-up: register the scope's site (a function-local static — its one
  // cold allocation happens here) and this thread's shard.
  body();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) body();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// ---------------------------------------------------------------------------
// Structured trace + exporters.

Trace make_sample_trace() {
  Trace t;
  t.set_enabled(true);
  t.emit(TimePoint::from_ns(1500), "scheduler", "legacy instant");
  t.emit_span(TimePoint::from_ns(2000), Duration::micros(3), "link0",
              "hop pkt#1",
              {{"packet_id", std::int64_t{1}}, {"wire_bytes", std::int64_t{590}}});
  t.emit_instant(TimePoint::from_ns(4000), "fault", "drop pkt#2",
                 {{"fault", std::string{"iid-loss"}},
                  {"lossy", true},
                  {"p", 0.25}});
  return t;
}

TEST(Trace, StructuredRecordsCarryKindDurationAttrs) {
  const Trace t = make_sample_trace();
  ASSERT_EQ(t.records().size(), 3u);

  const auto& legacy = t.records()[0];
  EXPECT_EQ(legacy.kind, TraceEventKind::kInstant);
  EXPECT_TRUE(legacy.attrs.empty());

  const auto& span = t.records()[1];
  EXPECT_EQ(span.kind, TraceEventKind::kSpan);
  EXPECT_EQ(span.duration.ns(), 3000);
  ASSERT_NE(span.attr("packet_id"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(span.attr("packet_id")->value), 1);
  EXPECT_EQ(span.attr("missing"), nullptr);

  const auto& inst = t.records()[2];
  EXPECT_EQ(std::get<bool>(inst.attr("lossy")->value), true);
  EXPECT_EQ(std::get<std::string>(inst.attr("fault")->value), "iid-loss");
}

TEST(Trace, ViewsAreIndexBackedAndCopyFree) {
  Trace t = make_sample_trace();
  t.emit(TimePoint::from_ns(5000), "scheduler", "second scheduler event");

  const auto sched = t.view_by_component("scheduler");
  ASSERT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched[0].message, "legacy instant");
  EXPECT_EQ(sched[1].message, "second scheduler event");
  EXPECT_TRUE(sched.contains("second"));
  EXPECT_FALSE(sched.contains("hop"));  // different component
  // The view references the trace's records, no copies.
  EXPECT_EQ(&sched[0], &t.records()[0]);

  std::size_t n = 0;
  for (const auto& r : sched) {
    EXPECT_EQ(r.component, "scheduler");
    ++n;
  }
  EXPECT_EQ(n, 2u);

  EXPECT_TRUE(t.view_by_component("nope").empty());
  EXPECT_EQ(t.view_by_attr("packet_id").size(), 1u);
  EXPECT_EQ(t.view_by_attr("fault").size(), 1u);

  EXPECT_TRUE(t.contains("hop pkt#1"));
  EXPECT_FALSE(t.contains("absent"));

  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_TRUE(t.view_by_component("scheduler").empty());
  EXPECT_TRUE(t.view_by_attr("packet_id").empty());
}

TEST(TraceExport, JsonlGoldenAndRoundTrip) {
  const Trace t = make_sample_trace();
  const std::string jsonl = bnm::obs::trace::to_jsonl(t);

  // Golden first line: the format is documented in docs/OBSERVABILITY.md
  // and consumed by outside tooling, so lock the exact bytes.
  const std::string first = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_EQ(first,
            "{\"ts_us\":1.500,\"component\":\"scheduler\","
            "\"name\":\"legacy instant\",\"kind\":\"instant\"}");

  // Every line parses back, and the span's fields round-trip.
  std::vector<bnm::obs::json::Value> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t nl = jsonl.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    auto v = bnm::obs::json::parse(
        std::string_view{jsonl}.substr(start, nl - start));
    ASSERT_TRUE(v.has_value());
    lines.push_back(std::move(*v));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);

  const auto& span = lines[1];
  EXPECT_EQ(span.find("kind")->as_string(), "span");
  EXPECT_DOUBLE_EQ(span.find("ts_us")->as_double(), 2.0);
  EXPECT_DOUBLE_EQ(span.find("dur_us")->as_double(), 3.0);
  const auto* attrs = span.find("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->find("packet_id")->as_int(), 1);
  EXPECT_EQ(attrs->find("wire_bytes")->as_int(), 590);

  const auto& inst = lines[2];
  EXPECT_EQ(inst.find("kind")->as_string(), "instant");
  EXPECT_EQ(inst.find("dur_us"), nullptr);
  EXPECT_TRUE(inst.find("attrs")->find("lossy")->as_bool());
  EXPECT_DOUBLE_EQ(inst.find("attrs")->find("p")->as_double(), 0.25);
}

TEST(TraceExport, ChromeTraceRoundTrip) {
  const Trace t = make_sample_trace();
  const std::string chrome = bnm::obs::trace::to_chrome_trace(t);

  auto doc = bnm::obs::json::parse(chrome);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("displayTimeUnit")->as_string(), "ms");
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 3 components -> 3 thread_name metadata events, plus 3 records.
  ASSERT_EQ(events->items().size(), 6u);

  // Metadata rows name each component, tids in first-appearance order.
  const auto& m0 = events->items()[0];
  EXPECT_EQ(m0.find("ph")->as_string(), "M");
  EXPECT_EQ(m0.find("tid")->as_int(), 1);
  EXPECT_EQ(m0.find("args")->find("name")->as_string(), "scheduler");
  EXPECT_EQ(events->items()[1].find("args")->find("name")->as_string(),
            "link0");
  EXPECT_EQ(events->items()[2].find("args")->find("name")->as_string(),
            "fault");

  // The span is a complete event with ts+dur in microseconds on the
  // component's synthetic thread.
  const auto& span = events->items()[4];
  EXPECT_EQ(span.find("ph")->as_string(), "X");
  EXPECT_EQ(span.find("name")->as_string(), "hop pkt#1");
  EXPECT_EQ(span.find("cat")->as_string(), "link0");
  EXPECT_EQ(span.find("tid")->as_int(), 2);
  EXPECT_DOUBLE_EQ(span.find("ts")->as_double(), 2.0);
  EXPECT_DOUBLE_EQ(span.find("dur")->as_double(), 3.0);
  EXPECT_EQ(span.find("args")->find("packet_id")->as_int(), 1);

  const auto& inst = events->items()[5];
  EXPECT_EQ(inst.find("ph")->as_string(), "i");
  EXPECT_EQ(inst.find("s")->as_string(), "t");
  EXPECT_EQ(inst.find("dur"), nullptr);
}

TEST(TraceExport, DisabledTraceExportsEmpty) {
  Trace t;  // disabled by default
  t.emit(TimePoint::epoch(), "scheduler", "dropped");
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(bnm::obs::trace::to_jsonl(t), "");
  EXPECT_EQ(bnm::obs::trace::to_chrome_trace(t),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(Json, ParseRejectsMalformedInput) {
  using bnm::obs::json::parse;
  std::string err;
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse("{\"a\":1} trailing", nullptr).has_value());
  EXPECT_FALSE(parse("[1,]", nullptr).has_value());

  auto v = parse("{\"a\":[1,2.5,\"x\\n\",true,null]}");
  ASSERT_TRUE(v.has_value());
  const auto* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 5u);
  EXPECT_EQ(a->items()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(a->items()[1].as_double(), 2.5);
  EXPECT_EQ(a->items()[2].as_string(), "x\n");
  EXPECT_TRUE(a->items()[3].as_bool());
  EXPECT_TRUE(a->items()[4].is_null());
  // dump() round-trips our own output byte-for-byte.
  EXPECT_EQ(v->dump(), "{\"a\":[1,2.5,\"x\\n\",true,null]}");
}

}  // namespace
