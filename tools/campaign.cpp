// Campaign driver CLI (core::run_campaign) — and its chaos harness.
//
// Runs a population campaign end to end and writes the canonical report:
//
//   clean run:   campaign --clients=2000 --shards=8 --report=clean.json
//   hard kill:   campaign --clients=2000 --shards=8 --checkpoint=ck.json
//                --kill-after=K        (process _Exit(42)s from inside the
//                shard-progress callback — the checkpoint for that shard
//                was already flushed, so this is the worst-case crash point)
//   resume:      campaign ... --checkpoint=ck.json --resume
//                --report=resumed.json
//
// scripts/check.sh asserts `cmp clean.json resumed.json` and also that an
// N-shard report is byte-identical to the 1-shard serial run's — the two
// identities the campaign aggregate's exact-merge design guarantees.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/campaign.h"

namespace {

using namespace bnm;

struct Options {
  core::CampaignSpec spec;
  int jobs = 0;
  std::string report;
  std::string checkpoint;
  bool resume = false;
  int flush_every = 1;
  long kill_after = -1;  ///< hard _Exit(42) after K completed shards
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--clients=N] [--shards=N] [--runs=N] [--jobs=N]\n"
      "          [--seed=N] [--report=PATH] [--checkpoint=PATH] [--resume]\n"
      "          [--flush-every=N] [--kill-after=K] [--quiet]\n",
      argv0);
  std::exit(2);
}

bool parse_long(const char* s, long* out) {
  char* end = nullptr;
  *out = std::strtol(s, &end, 10);
  return end && *end == '\0';
}

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.spec.clients = 2000;
  opt.spec.shards = 8;
  opt.spec.runs_per_client = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    long v = 0;
    if (const char* s = value("--clients=")) {
      if (!parse_long(s, &v) || v < 0) usage(argv[0]);
      opt.spec.clients = static_cast<std::uint64_t>(v);
    } else if (const char* s = value("--shards=")) {
      if (!parse_long(s, &v) || v < 1) usage(argv[0]);
      opt.spec.shards = static_cast<int>(v);
    } else if (const char* s = value("--runs=")) {
      if (!parse_long(s, &v) || v < 1) usage(argv[0]);
      opt.spec.runs_per_client = static_cast<int>(v);
    } else if (const char* s = value("--jobs=")) {
      if (!parse_long(s, &v)) usage(argv[0]);
      opt.jobs = static_cast<int>(v);
    } else if (const char* s = value("--seed=")) {
      if (!parse_long(s, &v) || v < 0) usage(argv[0]);
      opt.spec.seed = static_cast<std::uint64_t>(v);
    } else if (const char* s = value("--report=")) {
      opt.report = s;
    } else if (const char* s = value("--checkpoint=")) {
      opt.checkpoint = s;
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (const char* s = value("--flush-every=")) {
      if (!parse_long(s, &v) || v < 1) usage(argv[0]);
      opt.flush_every = static_cast<int>(v);
    } else if (const char* s = value("--kill-after=")) {
      if (!parse_long(s, &opt.kill_after) || opt.kill_after < 1) {
        usage(argv[0]);
      }
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  long completed = 0;  // this invocation's shard completions
  core::CampaignOptions options;
  options.jobs = opt.jobs;
  options.checkpoint = opt.checkpoint;
  options.resume = opt.resume;
  options.flush_every = opt.flush_every;
  options.progress = [&](std::size_t done, std::size_t total) {
    const long n = ++completed;
    if (!opt.quiet) {
      std::fprintf(stderr, "campaign: %zu/%zu shards\n", done, total);
    }
    if (opt.kill_after > 0 && n >= opt.kill_after) {
      // Simulated crash at the worst moment: after this shard's checkpoint
      // flush, before the engine regains control. No destructors, no
      // atexit — as close to kill -9 as portable code gets.
      std::fprintf(stderr, "campaign: hard kill after %ld shards\n", n);
      std::_Exit(42);
    }
  };

  const core::CampaignResult result = core::run_campaign(opt.spec, options);

  std::fprintf(stderr,
               "campaign: clients=%" PRIu64 " samples=%" PRIu64
               " failed=%" PRIu64 " shards=%zu run=%zu resumed=%zu\n",
               result.aggregate.clients, result.aggregate.samples,
               result.aggregate.failed_clients, result.shards,
               result.shards_run, result.shards_resumed);

  if (!opt.report.empty() &&
      !core::write_campaign_report(opt.report, opt.spec, result)) {
    std::fprintf(stderr, "campaign: cannot write report %s\n",
                 opt.report.c_str());
    return 1;
  }
  return 0;
}
