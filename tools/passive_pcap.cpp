// Offline-pcap round-trip gate for the passive estimator.
//
// Runs a deterministically faulted testbed scenario (dropped data segments
// force retransmissions through the Karn-suppression path), then appraises
// the same traffic twice:
//
//   live    — PassiveRttEstimator consuming the client tap directly
//   offline — the tap serialized to a classic pcap file, re-read with
//             PcapReader, and fed to a fresh estimator
//
// The two canonical reports must be byte-identical: pcap stores microsecond
// timestamps, and the estimator quantizes its observation clock to the same
// microsecond, so nothing may survive in the live path that the offline
// path cannot reproduce. scripts/check.sh cmp's the two report files again
// and schema-checks them.
//
//   $ passive_pcap [--exchanges=N] [--pcap=PATH]
//                  [--live-report=PATH] [--offline-report=PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/testbed.h"
#include "net/pcap_reader.h"
#include "net/pcap_writer.h"
#include "passive/rtt_estimator.h"

using namespace bnm;

namespace {

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::binary};
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  int exchanges = 30;
  std::string pcap_path = "passive_roundtrip.pcap";
  std::string live_path = "REPORT_passive_live.json";
  std::string offline_path = "REPORT_passive_offline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* s = value("--exchanges=")) {
      exchanges = std::atoi(s);
    } else if (const char* s = value("--pcap=")) {
      pcap_path = s;
    } else if (const char* s = value("--live-report=")) {
      live_path = s;
    } else if (const char* s = value("--offline-report=")) {
      offline_path = s;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--exchanges=N] [--pcap=PATH] "
                   "[--live-report=PATH] [--offline-report=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // Faulted scenario: drop the 2nd and 5th data segments toward the server
  // so the client retransmits — the report must show poisoned anchors and
  // suppressed samples, and the offline path must agree on every one.
  core::Testbed::Config tc;
  tc.seed = 20130;
  tc.tcp.timestamps = true;
  net::FaultPlan plan;
  plan.drop_nth_data_segment(2).drop_nth_data_segment(5);
  tc.faults_to_server = plan;
  core::Testbed bed{tc};

  std::size_t echoes = 0;
  std::shared_ptr<net::TcpConnection> conn;
  net::TcpCallbacks cbs;
  cbs.on_data = [&](const net::Payload&) { ++echoes; };
  cbs.on_connect = [&] {
    for (int i = 0; i < exchanges; ++i) {
      bed.sim().scheduler().schedule_after(
          sim::Duration::millis(120 * (i + 1)),
          [&] { conn->send(std::string(300, 'p')); });
    }
  };
  conn = bed.client().tcp_connect(bed.tcp_echo_endpoint(), std::move(cbs));

  const sim::TimePoint horizon =
      bed.sim().now() +
      sim::Duration::millis(120) * (exchanges + 2) + sim::Duration::seconds(5);
  bed.sim().scheduler().run_until(horizon);

  const net::PacketCapture& cap = bed.client().capture();
  std::printf("scenario: %d sends, %zu echoes, %zu captured packets\n",
              exchanges, echoes, cap.size());

  passive::PassiveRttEstimator live;
  live.consume(cap);
  const std::string live_report = live.report_json("pcap-roundtrip");

  const std::size_t pcap_bytes = net::PcapWriter::write_file(cap, pcap_path);
  std::printf("wrote %s (%zu bytes)\n", pcap_path.c_str(), pcap_bytes);

  const net::PcapReader::Result parsed = net::PcapReader::read_file(pcap_path);
  if (!parsed.ok() || parsed.records.size() != cap.size()) {
    std::fprintf(stderr, "FAIL: pcap re-read lost records (%zu of %zu)\n",
                 parsed.records.size(), cap.size());
    return 1;
  }
  passive::PassiveRttEstimator offline;
  offline.consume(parsed.records);
  const std::string offline_report = offline.report_json("pcap-roundtrip");

  if (!write_text(live_path, live_report) ||
      !write_text(offline_path, offline_report)) {
    std::fprintf(stderr, "FAIL: cannot write report files\n");
    return 1;
  }
  std::printf("wrote %s / %s (%zu / %zu bytes)\n", live_path.c_str(),
              offline_path.c_str(), live_report.size(), offline_report.size());

  const auto& c = live.counters();
  std::printf("matcher: %llu samples, %llu poisoned, %llu suppressed\n",
              static_cast<unsigned long long>(c.samples),
              static_cast<unsigned long long>(c.retransmit_poisoned),
              static_cast<unsigned long long>(c.suppressed_samples));
  if (echoes != static_cast<std::size_t>(exchanges)) {
    std::fprintf(stderr, "FAIL: only %zu of %d echoes completed\n", echoes,
                 exchanges);
    return 1;
  }
  if (c.samples == 0 || c.retransmit_poisoned == 0) {
    std::fprintf(stderr,
                 "FAIL: scenario did not exercise the matcher (samples=%llu, "
                 "poisoned=%llu)\n",
                 static_cast<unsigned long long>(c.samples),
                 static_cast<unsigned long long>(c.retransmit_poisoned));
    return 1;
  }
  if (live_report != offline_report) {
    std::fprintf(stderr,
                 "FAIL: offline pcap report differs from the live tap\n");
    return 1;
  }
  std::printf("offline pcap report is byte-identical to the live tap\n");
  return 0;
}
