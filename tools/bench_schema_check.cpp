// Validates emitted BENCH_*.json files against the schemas documented in
// docs/BENCH_SCHEMAS.md. scripts/check.sh runs this after the benches:
// unknown fields, missing required fields, and type mismatches all fail
// the check, so the documented schema and the emitters cannot drift apart
// silently.
//
//   bench_schema_check BENCH_perf_matrix.json BENCH_obs_overhead.json ...
//
// The schema each file is checked against is chosen by its basename.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using bnm::obs::json::Value;

// A field type in the schema tree. kNumber accepts integers too (printf
// emitters write "0" for a zero double); kInt does not accept doubles.
enum class FieldType { kInt, kNumber, kBool, kString, kObject, kArray };

struct Field {
  const char* name;
  FieldType type;
  bool required = true;
  std::vector<Field> children;  // kObject: members; kArray: element schema
};

bool type_matches(const Value& v, FieldType t) {
  switch (t) {
    case FieldType::kInt: return v.is_int();
    case FieldType::kNumber: return v.is_number();
    case FieldType::kBool: return v.is_bool();
    case FieldType::kString: return v.is_string();
    case FieldType::kObject: return v.is_object();
    case FieldType::kArray: return v.is_array();
  }
  return false;
}

const char* type_name(FieldType t) {
  switch (t) {
    case FieldType::kInt: return "integer";
    case FieldType::kNumber: return "number";
    case FieldType::kBool: return "bool";
    case FieldType::kString: return "string";
    case FieldType::kObject: return "object";
    case FieldType::kArray: return "array";
  }
  return "?";
}

int g_errors = 0;

void error(const std::string& where, const std::string& what) {
  std::fprintf(stderr, "schema: %s: %s\n", where.c_str(), what.c_str());
  ++g_errors;
}

void check_object(const Value& v, const std::vector<Field>& fields,
                  const std::string& where);

void check_field(const Value& v, const Field& f, const std::string& where) {
  if (!type_matches(v, f.type)) {
    error(where, std::string{"expected "} + type_name(f.type));
    return;
  }
  if (f.type == FieldType::kObject) {
    check_object(v, f.children, where);
  } else if (f.type == FieldType::kArray && !f.children.empty()) {
    const Field& elem = f.children.front();
    for (std::size_t i = 0; i < v.items().size(); ++i) {
      check_field(v.items()[i], elem, where + "[" + std::to_string(i) + "]");
    }
  }
}

void check_object(const Value& v, const std::vector<Field>& fields,
                  const std::string& where) {
  for (const auto& [key, member] : v.members()) {
    const Field* match = nullptr;
    for (const Field& f : fields) {
      if (key == f.name) {
        match = &f;
        break;
      }
    }
    if (!match) {
      error(where, "unknown field \"" + key + "\"");
      continue;
    }
    check_field(member, *match, where + "." + key);
  }
  for (const Field& f : fields) {
    if (f.required && !v.find(f.name)) {
      error(where, std::string{"missing required field \""} + f.name + "\"");
    }
  }
}

// ---- Schemas (docs/BENCH_SCHEMAS.md is the prose counterpart) ----------

std::vector<Field> perf_matrix_schema() {
  return {
      {"hardware_concurrency", FieldType::kInt, true, {}},
      {"matrix",
       FieldType::kObject,
       true,
       {
           {"cells", FieldType::kInt, true, {}},
           {"runs_per_cell", FieldType::kInt, true, {}},
           {"jobs", FieldType::kInt, true, {}},
           {"serial_ms", FieldType::kNumber, true, {}},
           {"parallel_ms", FieldType::kNumber, true, {}},
           {"speedup", FieldType::kNumber, true, {}},
           {"parallel_meaningful", FieldType::kBool, true, {}},
           {"parallel_note", FieldType::kString, false, {}},
           {"identical", FieldType::kBool, true, {}},
           {"arena",
            FieldType::kObject,
            true,
            {
                {"stats_compiled", FieldType::kBool, true, {}},
                {"allocs_avoided", FieldType::kInt, true, {}},
                {"bytes_served", FieldType::kInt, true, {}},
                {"peak_arena_bytes", FieldType::kInt, true, {}},
                {"off_serial_ms", FieldType::kNumber, true, {}},
                {"identical_on_off", FieldType::kBool, true, {}},
            }},
           {"queue",
            FieldType::kObject,
            true,
            {
                {"heap_serial_ms", FieldType::kNumber, true, {}},
                {"identical_calendar_heap", FieldType::kBool, true, {}},
            }},
       }},
      {"checkpoint",
       FieldType::kObject,
       true,
       {
           {"baseline_ms", FieldType::kNumber, true, {}},
           {"disabled_ms", FieldType::kNumber, true, {}},
           {"enabled_ms", FieldType::kNumber, true, {}},
           {"disabled_overhead_percent", FieldType::kNumber, true, {}},
           {"disabled_delta_ms", FieldType::kNumber, true, {}},
           {"enabled_overhead_percent", FieldType::kNumber, true, {}},
           {"identical", FieldType::kBool, true, {}},
       }},
      {"capture_scan",
       FieldType::kObject,
       true,
       {
           {"records", FieldType::kInt, true, {}},
           {"window_lookups", FieldType::kInt, true, {}},
           {"linear_ms", FieldType::kNumber, true, {}},
           {"indexed_ms", FieldType::kNumber, true, {}},
           {"speedup", FieldType::kNumber, true, {}},
       }},
      {"scheduler",
       FieldType::kObject,
       true,
       {
           {"events", FieldType::kInt, true, {}},
           {"schedule_ns_per_event", FieldType::kNumber, true, {}},
           {"post_ns_per_event", FieldType::kNumber, true, {}},
           {"events_per_sec", FieldType::kNumber, true, {}},
           {"calendar_ns_per_event", FieldType::kNumber, true, {}},
           {"heap_ns_per_event", FieldType::kNumber, true, {}},
           {"queue_speedup", FieldType::kNumber, true, {}},
           {"batched_ns_per_event", FieldType::kNumber, true, {}},
           {"stepwise_ns_per_event", FieldType::kNumber, true, {}},
           {"batch_speedup", FieldType::kNumber, true, {}},
           {"pooled_control_blocks", FieldType::kInt, true, {}},
       }},
      {"profile",
       FieldType::kArray,
       false,
       {
           {"",
            FieldType::kObject,
            true,
            {
                {"site", FieldType::kString, true, {}},
                {"calls", FieldType::kInt, true, {}},
                {"total_ms", FieldType::kNumber, true, {}},
                {"avg_us", FieldType::kNumber, true, {}},
                {"max_us", FieldType::kNumber, true, {}},
            }},
       }},
  };
}

std::vector<Field> copy_counts() {
  return {
      {"deep_copy_bytes", FieldType::kInt, true, {}},
      {"aliased_bytes", FieldType::kInt, true, {}},
      {"old_design_bytes", FieldType::kInt, true, {}},
      {"buffers_allocated", FieldType::kInt, true, {}},
      {"copy_reduction", FieldType::kNumber, true, {}},
  };
}

std::vector<Field> payload_copy_schema() {
  std::vector<Field> tcp_bulk = {
      {"transfer_bytes", FieldType::kInt, true, {}},
      {"echoed_bytes", FieldType::kInt, true, {}},
  };
  std::vector<Field> probe_matrix = {
      {"cells", FieldType::kInt, true, {}},
      {"runs_per_cell", FieldType::kInt, true, {}},
  };
  for (Field& f : copy_counts()) {
    tcp_bulk.push_back(f);
    probe_matrix.push_back(f);
  }
  return {
      {"tcp_bulk", FieldType::kObject, true, std::move(tcp_bulk)},
      {"probe_matrix", FieldType::kObject, true, std::move(probe_matrix)},
      {"handoff",
       FieldType::kObject,
       true,
       {
           {"payload_bytes", FieldType::kInt, true, {}},
           {"handoffs", FieldType::kInt, true, {}},
           {"alias_ns_per_packet", FieldType::kNumber, true, {}},
           {"deep_copy_ns_per_packet", FieldType::kNumber, true, {}},
       }},
  };
}

std::vector<Field> fault_overhead_schema() {
  return {
      {"pipeline",
       FieldType::kObject,
       true,
       {
           {"packets", FieldType::kInt, true, {}},
           {"direct_ns_per_packet", FieldType::kNumber, true, {}},
           {"disabled_ns_per_packet", FieldType::kNumber, true, {}},
           {"active_ns_per_packet", FieldType::kNumber, true, {}},
       }},
      {"experiment",
       FieldType::kObject,
       true,
       {
           {"cells", FieldType::kInt, true, {}},
           {"runs_per_cell", FieldType::kInt, true, {}},
           {"best_of", FieldType::kInt, true, {}},
           {"baseline_ms", FieldType::kNumber, true, {}},
           {"disabled_ms", FieldType::kNumber, true, {}},
           {"overhead_percent", FieldType::kNumber, true, {}},
           {"identical", FieldType::kBool, true, {}},
       }},
  };
}

std::vector<Field> obs_overhead_schema() {
  return {
      {"micro",
       FieldType::kObject,
       true,
       {
           {"iters", FieldType::kInt, true, {}},
           {"raw_add_ns", FieldType::kNumber, true, {}},
           {"counter_add_ns", FieldType::kNumber, true, {}},
           {"profscope_disabled_ns", FieldType::kNumber, true, {}},
           {"profscope_enabled_ns", FieldType::kNumber, true, {}},
           {"trace_emit_disabled_ns", FieldType::kNumber, true, {}},
       }},
      {"experiment",
       FieldType::kObject,
       true,
       {
           {"cells", FieldType::kInt, true, {}},
           {"runs_per_cell", FieldType::kInt, true, {}},
           {"best_of", FieldType::kInt, true, {}},
           {"disabled_ms", FieldType::kNumber, true, {}},
           {"enabled_ms", FieldType::kNumber, true, {}},
           {"measured_overhead_percent", FieldType::kNumber, true, {}},
           {"profiled_scope_entries", FieldType::kInt, true, {}},
           {"est_disabled_overhead_percent", FieldType::kNumber, true, {}},
           {"identical", FieldType::kBool, true, {}},
       }},
      {"registry",
       FieldType::kObject,
       true,
       {
           {"metrics", FieldType::kInt, true, {}},
           {"snapshot_bytes", FieldType::kInt, true, {}},
           {"snapshot_identical", FieldType::kBool, true, {}},
       }},
  };
}

// Shared record schema for checkpoint and matrix-report files: one entry
// per cell, keyed by the FNV-1a config hash, carrying a full OverheadSeries.
std::vector<Field> cell_record() {
  return {
      {"cell", FieldType::kInt, true, {}},
      {"config_hash", FieldType::kString, true, {}},
      {"series",
       FieldType::kObject,
       true,
       {
           {"case_label", FieldType::kString, true, {}},
           {"method_name", FieldType::kString, true, {}},
           {"failures", FieldType::kInt, true, {}},
           {"first_error", FieldType::kString, true, {}},
           {"accounting",
            FieldType::kObject,
            true,
            {
                {"timeouts", FieldType::kInt, true, {}},
                {"transport_errors", FieldType::kInt, true, {}},
                {"degraded", FieldType::kInt, true, {}},
                {"http_retries", FieldType::kInt, true, {}},
                {"http_timeouts", FieldType::kInt, true, {}},
            }},
           {"samples",
            FieldType::kArray,
            true,
            {
                {"",
                 FieldType::kArray,
                 true,
                 {
                     {"", FieldType::kNumber, true, {}},
                 }},
            }},
       }},
  };
}

std::vector<Field> checkpoint_schema(const char* records_key) {
  return {
      {"format", FieldType::kString, true, {}},
      {"version", FieldType::kInt, true, {}},
      {"cells", FieldType::kInt, true, {}},
      {records_key,
       FieldType::kArray,
       true,
       {
           {"", FieldType::kObject, true, cell_record()},
       }},
  };
}

// ---- Campaign schemas --------------------------------------------------

// Derived-quantile summary of one sketch as campaign reports emit it
// (count plus finite min/max/mean and fixed percentiles, zeros when empty).
std::vector<Field> sketch_summary() {
  return {
      {"count", FieldType::kInt, true, {}},
      {"min_ms", FieldType::kNumber, true, {}},
      {"max_ms", FieldType::kNumber, true, {}},
      {"mean_ms", FieldType::kNumber, true, {}},
      {"p25_ms", FieldType::kNumber, true, {}},
      {"p50_ms", FieldType::kNumber, true, {}},
      {"p75_ms", FieldType::kNumber, true, {}},
      {"p90_ms", FieldType::kNumber, true, {}},
      {"p99_ms", FieldType::kNumber, true, {}},
  };
}

// Full mergeable sketch state (stats::QuantileSketch::to_json) as campaign
// checkpoints persist it: grid, exact counters, sparse [index, count] pairs.
std::vector<Field> sketch_state() {
  return {
      {"lo", FieldType::kNumber, true, {}},
      {"hi", FieldType::kNumber, true, {}},
      {"cells", FieldType::kInt, true, {}},
      {"count", FieldType::kInt, true, {}},
      {"min", FieldType::kNumber, true, {}},
      {"max", FieldType::kNumber, true, {}},
      {"sum_ns", FieldType::kInt, true, {}},
      {"buckets",
       FieldType::kArray,
       true,
       {
           {"",
            FieldType::kArray,
            true,
            {
                {"", FieldType::kInt, true, {}},
            }},
       }},
  };
}

// Resilience counters shared by the aggregate and report per-method rows.
void push_method_counters(std::vector<Field>* fields) {
  for (const char* name : {"clients", "samples", "timeouts",
                           "transport_errors", "degraded", "http_retries",
                           "http_timeouts"}) {
    fields->push_back({name, FieldType::kInt, true, {}});
  }
}

// One shard's CampaignAggregate (checkpoint "state" member).
std::vector<Field> campaign_aggregate() {
  std::vector<Field> method{};
  push_method_counters(&method);
  method.push_back({"d1", FieldType::kObject, true, sketch_state()});
  method.push_back({"d2", FieldType::kObject, true, sketch_state()});
  method.push_back({"overhead_us",
                    FieldType::kArray,
                    true,
                    {
                        {"", FieldType::kInt, true, {}},
                    }});
  return {
      {"clients", FieldType::kInt, true, {}},
      {"samples", FieldType::kInt, true, {}},
      {"failed_clients", FieldType::kInt, true, {}},
      {"methods",
       FieldType::kArray,
       true,
       {
           {"", FieldType::kObject, true, std::move(method)},
       }},
      {"profiles",
       FieldType::kArray,
       true,
       {
           {"",
            FieldType::kObject,
            true,
            {
                {"clients", FieldType::kInt, true, {}},
                {"samples", FieldType::kInt, true, {}},
                {"d", FieldType::kObject, true, sketch_state()},
            }},
       }},
      {"net_rtt", FieldType::kObject, true, sketch_state()},
      {"rtt_inflation", FieldType::kObject, true, sketch_state()},
  };
}

std::vector<Field> campaign_checkpoint_schema() {
  return {
      {"format", FieldType::kString, true, {}},
      {"version", FieldType::kInt, true, {}},
      {"spec_hash", FieldType::kString, true, {}},
      {"clients", FieldType::kInt, true, {}},
      {"shards", FieldType::kInt, true, {}},
      {"records",
       FieldType::kArray,
       true,
       {
           {"",
            FieldType::kObject,
            true,
            {
                {"shard", FieldType::kInt, true, {}},
                {"state", FieldType::kObject, true, campaign_aggregate()},
            }},
       }},
  };
}

std::vector<Field> campaign_report_schema() {
  std::vector<Field> method{{"kind", FieldType::kString, true, {}}};
  push_method_counters(&method);
  method.push_back({"d1", FieldType::kObject, true, sketch_summary()});
  method.push_back({"d2", FieldType::kObject, true, sketch_summary()});
  method.push_back({"overhead_us",
                    FieldType::kObject,
                    true,
                    {
                        {"bounds_us",
                         FieldType::kArray,
                         true,
                         {
                             {"", FieldType::kInt, true, {}},
                         }},
                        {"buckets",
                         FieldType::kArray,
                         true,
                         {
                             {"", FieldType::kInt, true, {}},
                         }},
                    }});
  return {
      {"format", FieldType::kString, true, {}},
      {"version", FieldType::kInt, true, {}},
      {"spec_hash", FieldType::kString, true, {}},
      {"spec",
       FieldType::kObject,
       true,
       {
           {"seed", FieldType::kInt, true, {}},
           {"clients", FieldType::kInt, true, {}},
           {"runs_per_client", FieldType::kInt, true, {}},
           {"min_rtt_window", FieldType::kInt, true, {}},
           {"rtt_median_ms", FieldType::kNumber, true, {}},
           {"lossy_fraction", FieldType::kNumber, true, {}},
           {"loss_probability", FieldType::kNumber, true, {}},
       }},
      {"totals",
       FieldType::kObject,
       true,
       {
           {"clients", FieldType::kInt, true, {}},
           {"samples", FieldType::kInt, true, {}},
           {"failed_clients", FieldType::kInt, true, {}},
       }},
      {"methods",
       FieldType::kArray,
       true,
       {
           {"", FieldType::kObject, true, std::move(method)},
       }},
      {"profiles",
       FieldType::kArray,
       true,
       {
           {"",
            FieldType::kObject,
            true,
            {
                {"case", FieldType::kString, true, {}},
                {"clients", FieldType::kInt, true, {}},
                {"samples", FieldType::kInt, true, {}},
                {"d", FieldType::kObject, true, sketch_summary()},
            }},
       }},
      {"net_rtt", FieldType::kObject, true, sketch_summary()},
      {"rtt_inflation", FieldType::kObject, true, sketch_summary()},
  };
}

std::vector<Field> campaign_scale_schema() {
  return {
      {"clients", FieldType::kInt, true, {}},
      {"runs_per_client", FieldType::kInt, true, {}},
      {"shards", FieldType::kInt, true, {}},
      {"jobs", FieldType::kInt, true, {}},
      {"wall_ms", FieldType::kNumber, true, {}},
      {"clients_per_sec", FieldType::kNumber, true, {}},
      {"samples", FieldType::kInt, true, {}},
      {"failed_clients", FieldType::kInt, true, {}},
      {"identity",
       FieldType::kObject,
       true,
       {
           {"clients", FieldType::kInt, true, {}},
           {"report_bytes", FieldType::kInt, true, {}},
           {"identical_shards", FieldType::kBool, true, {}},
       }},
      {"memory",
       FieldType::kObject,
       true,
       {
           {"aggregate_bytes", FieldType::kInt, true, {}},
           {"independent_of_clients", FieldType::kBool, true, {}},
           {"peak_rss_kb", FieldType::kInt, true, {}},
           {"per_shards",
            FieldType::kArray,
            true,
            {
                {"",
                 FieldType::kObject,
                 true,
                 {
                     {"shards", FieldType::kInt, true, {}},
                     {"aggregation_bytes", FieldType::kInt, true, {}},
                 }},
            }},
       }},
  };
}

std::vector<Field> passive_scale_schema() {
  return {
      {"packets", FieldType::kInt, true, {}},
      {"flows", FieldType::kInt, true, {}},
      {"wall_ms", FieldType::kNumber, true, {}},
      {"packets_per_sec", FieldType::kNumber, true, {}},
      {"samples", FieldType::kInt, true, {}},
      {"duplicate_tsvals", FieldType::kInt, true, {}},
      {"sample_yield", FieldType::kNumber, true, {}},
      {"report_bytes", FieldType::kInt, true, {}},
      {"identical_reports", FieldType::kBool, true, {}},
  };
}

// PassiveRttEstimator::report_json ("bnm.passive.report.v1"): counters,
// per-flow summaries ordered by flow label, and the raw sample list.
std::vector<Field> passive_report_schema() {
  return {
      {"schema", FieldType::kString, true, {}},
      {"label", FieldType::kString, true, {}},
      {"quantum_ns", FieldType::kInt, true, {}},
      {"counters",
       FieldType::kObject,
       true,
       {
           {"packets", FieldType::kInt, true, {}},
           {"ts_packets", FieldType::kInt, true, {}},
           {"anchors", FieldType::kInt, true, {}},
           {"duplicate_tsvals", FieldType::kInt, true, {}},
           {"retransmit_poisoned", FieldType::kInt, true, {}},
           {"suppressed_samples", FieldType::kInt, true, {}},
           {"samples", FieldType::kInt, true, {}},
           {"unmatched_echoes", FieldType::kInt, true, {}},
           {"evicted", FieldType::kInt, true, {}},
           {"half_flows", FieldType::kInt, true, {}},
       }},
      {"flows",
       FieldType::kArray,
       true,
       {
           {"",
            FieldType::kObject,
            true,
            {
                {"flow", FieldType::kString, true, {}},
                {"samples", FieldType::kInt, true, {}},
                {"min_rtt_ns", FieldType::kInt, true, {}},
                {"median_rtt_ns", FieldType::kInt, true, {}},
                {"max_rtt_ns", FieldType::kInt, true, {}},
            }},
       }},
      {"samples",
       FieldType::kArray,
       true,
       {
           {"",
            FieldType::kObject,
            true,
            {
                {"from", FieldType::kString, true, {}},
                {"to", FieldType::kString, true, {}},
                {"anchor_ns", FieldType::kInt, true, {}},
                {"rtt_ns", FieldType::kInt, true, {}},
                {"tsval", FieldType::kInt, true, {}},
                {"first", FieldType::kBool, true, {}},
            }},
       }},
  };
}

bool has_prefix(const char* s, const char* prefix) {
  return std::strncmp(s, prefix, std::strlen(prefix)) == 0;
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

int check_file(const char* path) {
  const char* base = basename_of(path);
  std::vector<Field> schema;
  if (!std::strcmp(base, "BENCH_perf_matrix.json")) {
    schema = perf_matrix_schema();
  } else if (!std::strcmp(base, "BENCH_payload_copy.json")) {
    schema = payload_copy_schema();
  } else if (!std::strcmp(base, "BENCH_fault_overhead.json")) {
    schema = fault_overhead_schema();
  } else if (!std::strcmp(base, "BENCH_obs_overhead.json")) {
    schema = obs_overhead_schema();
  } else if (!std::strcmp(base, "BENCH_campaign_scale.json")) {
    schema = campaign_scale_schema();
  } else if (!std::strcmp(base, "BENCH_passive_scale.json")) {
    schema = passive_scale_schema();
  } else if (has_prefix(base, "REPORT_passive")) {
    schema = passive_report_schema();
  } else if (has_prefix(base, "REPORT_campaign")) {
    schema = campaign_report_schema();
  } else if (has_prefix(base, "CHECKPOINT_campaign")) {
    // Must precede the bare CHECKPOINT prefix (matrix checkpoints).
    schema = campaign_checkpoint_schema();
  } else if (has_prefix(base, "CHECKPOINT")) {
    schema = checkpoint_schema("records");
  } else if (has_prefix(base, "REPORT_matrix")) {
    schema = checkpoint_schema("results");
  } else {
    std::fprintf(stderr, "schema: no schema registered for %s\n", base);
    return 1;
  }

  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "schema: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  std::string parse_error;
  auto doc = bnm::obs::json::parse(ss.str(), &parse_error);
  if (!doc) {
    std::fprintf(stderr, "schema: %s: parse failed: %s\n", path,
                 parse_error.c_str());
    return 1;
  }
  if (!doc->is_object()) {
    std::fprintf(stderr, "schema: %s: top level is not an object\n", path);
    return 1;
  }

  int before = g_errors;
  check_object(*doc, schema, base);
  if (g_errors == before) {
    std::printf("schema: %s OK\n", base);
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_schema_check BENCH_*.json...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= check_file(argv[i]);
  return rc;
}
