// Chaos harness for the crash-safe matrix engine (scripts/check.sh gate).
//
// Drives core::run_matrix_checked through the failure modes the engine
// exists for, from the outside, as a real campaign driver would:
//
//   clean run:      chaos_matrix --checkpoint=ck.json --report=clean.json
//   hard kill:      chaos_matrix --checkpoint=ck.json --kill-after=K
//                   (process _Exit(42)s from inside the progress callback
//                   after K cells — the checkpoint was already flushed, so
//                   this is the worst-case crash point)
//   resume:         chaos_matrix --checkpoint=ck.json --resume
//                   --report=resumed.json
//   soft cancel:    chaos_matrix --soft-kill-after=K  (cooperative cancel;
//                   exits 43 after verifying the drain was graceful)
//
// The gate then asserts `cmp clean.json resumed.json`: a killed-and-resumed
// run must produce a byte-identical report, including under active
// FaultPlans (--faults).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "core/parallel_runner.h"

namespace {

using namespace bnm;

struct Options {
  int cells = 12;
  int runs = 3;
  int jobs = 2;
  std::string checkpoint;
  bool resume = false;
  long kill_after = -1;       ///< hard _Exit(42) after K completed cells
  long soft_kill_after = -1;  ///< cooperative cancel after K completed cells
  bool faults = false;        ///< add FaultPlan-bearing cells to the matrix
  std::string report;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--cells=N] [--runs=N] [--jobs=N] [--checkpoint=PATH]\n"
      "          [--resume] [--kill-after=K] [--soft-kill-after=K]\n"
      "          [--faults] [--report=PATH]\n",
      argv0);
  std::exit(2);
}

bool parse_long(const char* s, long* out) {
  char* end = nullptr;
  *out = std::strtol(s, &end, 10);
  return end && *end == '\0';
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    long v = 0;
    if (const char* s = value("--cells=")) {
      if (!parse_long(s, &v) || v < 1) usage(argv[0]);
      opt.cells = static_cast<int>(v);
    } else if (const char* s = value("--runs=")) {
      if (!parse_long(s, &v) || v < 1) usage(argv[0]);
      opt.runs = static_cast<int>(v);
    } else if (const char* s = value("--jobs=")) {
      if (!parse_long(s, &v)) usage(argv[0]);
      opt.jobs = static_cast<int>(v);
    } else if (const char* s = value("--checkpoint=")) {
      opt.checkpoint = s;
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (const char* s = value("--kill-after=")) {
      if (!parse_long(s, &opt.kill_after) || opt.kill_after < 1) {
        usage(argv[0]);
      }
    } else if (const char* s = value("--soft-kill-after=")) {
      if (!parse_long(s, &opt.soft_kill_after) || opt.soft_kill_after < 1) {
        usage(argv[0]);
      }
    } else if (arg == "--faults") {
      opt.faults = true;
    } else if (const char* s = value("--report=")) {
      opt.report = s;
    } else {
      usage(argv[0]);
    }
  }
  return opt;
}

/// A deterministic mixed matrix: HTTP, socket and plugin methods across
/// browsers/OSes, cycled out to --cells entries. With --faults, every third
/// cell carries loss/blackhole fault plans, so the bit-identity contract is
/// exercised under active fault injection too.
std::vector<core::ExperimentConfig> build_matrix(const Options& opt) {
  using B = browser::BrowserId;
  using O = browser::OsId;
  using K = methods::ProbeKind;
  struct Proto {
    B b;
    O os;
    K k;
  };
  const Proto protos[] = {
      {B::kChrome, O::kUbuntu, K::kXhrGet},
      {B::kFirefox, O::kUbuntu, K::kDom},
      {B::kChrome, O::kWindows7, K::kJavaSocket},
      {B::kOpera, O::kUbuntu, K::kFlashGet},
      {B::kChrome, O::kUbuntu, K::kWebSocket},
      {B::kFirefox, O::kWindows7, K::kXhrPost},
      {B::kSafari, O::kWindows7, K::kJavaUdp},
      {B::kOpera, O::kWindows7, K::kFlashPost},
  };
  constexpr std::size_t kProtos = sizeof(protos) / sizeof(protos[0]);

  std::vector<core::ExperimentConfig> cells;
  cells.reserve(static_cast<std::size_t>(opt.cells));
  for (int i = 0; i < opt.cells; ++i) {
    const Proto& p = protos[static_cast<std::size_t>(i) % kProtos];
    core::ExperimentConfig cfg;
    cfg.browser = p.b;
    cfg.os = p.os;
    cfg.kind = p.k;
    cfg.runs = opt.runs;
    cfg.seed = 42 + static_cast<std::uint64_t>(i) / kProtos;
    if (opt.faults && i % 3 == 1) {
      net::FaultPlan to_server;
      to_server.name = "chaos-to-server";
      to_server.loss_probability = 0.02;
      cfg.testbed.faults_to_server = to_server;
      net::FaultPlan from_server;
      from_server.name = "chaos-from-server";
      from_server.blackhole(sim::TimePoint::epoch() + sim::Duration::seconds(2),
                            sim::TimePoint::epoch() + sim::Duration::seconds(3));
      cfg.testbed.faults_from_server = from_server;
      // Give the transport a way out of the blackhole so the cell still
      // converges deterministically instead of riding the sample deadline.
      cfg.http_request_timeout = sim::Duration::seconds(2);
      cfg.http_max_retries = 2;
    }
    cells.push_back(cfg);
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const std::vector<core::ExperimentConfig> cells = build_matrix(opt);

  std::atomic<bool> cancel{false};
  std::atomic<long> completed{0};

  core::MatrixOptions options;
  options.jobs = opt.jobs;
  options.checkpoint.path = opt.checkpoint;
  options.checkpoint.resume = opt.resume;
  options.cancel = opt.soft_kill_after > 0 ? &cancel : nullptr;
  options.progress = [&](std::size_t done, std::size_t total) {
    const long n = ++completed;
    std::fprintf(stderr, "chaos_matrix: %zu/%zu cells\n", done, total);
    if (opt.kill_after > 0 && n >= opt.kill_after) {
      // Simulated crash at the worst moment: after the checkpoint flush for
      // this cell, before the engine gets control back. No destructors, no
      // atexit — as close to kill -9 as portable code gets.
      std::fprintf(stderr, "chaos_matrix: hard kill after %ld cells\n", n);
      std::_Exit(42);
    }
    if (opt.soft_kill_after > 0 && n >= opt.soft_kill_after) {
      cancel.store(true, std::memory_order_release);
    }
  };

  const core::MatrixResult result = core::run_matrix_checked(cells, options);

  std::fprintf(stderr,
               "chaos_matrix: run=%zu resumed=%zu quarantined=%zu "
               "retries=%llu cancelled=%d\n",
               result.cells_run, result.cells_resumed,
               result.quarantined.size(),
               static_cast<unsigned long long>(result.retries),
               result.cancelled ? 1 : 0);

  if (opt.soft_kill_after > 0) {
    // Graceful drain: cancellation must be acknowledged, and every cell
    // that did complete must carry real samples (nothing torn mid-cell).
    if (!result.cancelled) {
      std::fprintf(stderr, "chaos_matrix: cancel was never acknowledged\n");
      return 1;
    }
    if (result.cells_run + result.cells_resumed >= cells.size()) {
      std::fprintf(stderr, "chaos_matrix: cancel did not stop the run\n");
      return 1;
    }
    return 43;
  }

  if (!result.quarantined.empty()) {
    for (const core::CellError& e : result.quarantined) {
      std::fprintf(stderr, "chaos_matrix: quarantined cell %zu (%s): %s\n",
                   e.cell, e.where.c_str(), e.what.c_str());
    }
    return 1;
  }

  if (!opt.report.empty() &&
      !core::write_matrix_report(opt.report, cells, result.series)) {
    std::fprintf(stderr, "chaos_matrix: cannot write report %s\n",
                 opt.report.c_str());
    return 1;
  }
  return 0;
}
