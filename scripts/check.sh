#!/usr/bin/env bash
# Tier-1 verification plus an AddressSanitizer pass.
#
#   scripts/check.sh          # full: plain build + ctest, then ASan build + ctest
#   scripts/check.sh --fast   # plain build + ctest only (skip the ASan pass)
#
# Exits non-zero on the first failing step. Build trees: build/ (plain)
# and build-asan/ (ASan); both are incremental across invocations.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$*"; }

# Prefer Ninja, but never fight an already-configured tree's generator.
gen_for() {
  if [[ ! -f "$1/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
    echo "-G Ninja"
  fi
}

step "tier-1: configure"
# shellcheck disable=SC2046
cmake -B build -S . $(gen_for build)

step "tier-1: build"
cmake --build build -j

step "tier-1: ctest (-L tier1)"
ctest --test-dir build -L tier1 --output-on-failure

step "faults: ctest (-L faults)"
ctest --test-dir build -L faults --output-on-failure

if [[ "$FAST" == 1 ]]; then
  echo
  echo "check.sh: tier-1 OK (ASan pass skipped with --fast)"
  exit 0
fi

step "asan: configure (BNM_SANITIZE=address)"
# shellcheck disable=SC2046
cmake -B build-asan -S . $(gen_for build-asan) -DBNM_SANITIZE=address

step "asan: build tests"
cmake --build build-asan -j --target bnm_tests bnm_fault_tests

step "asan: ctest"
ctest --test-dir build-asan --output-on-failure

echo
echo "check.sh: tier-1 + ASan OK"
