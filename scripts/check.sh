#!/usr/bin/env bash
# Tier-1 verification plus an AddressSanitizer pass and a perf gate.
#
#   scripts/check.sh          # full: plain build + ctest, ASan build + ctest,
#                             # then a Release perf_matrix run (arena A/B gate)
#   scripts/check.sh --fast   # plain build + ctest only (skip ASan and perf)
#
# Exits non-zero on the first failing step. Build trees: build/ (plain),
# build-asan/ (ASan) and build-release/ (perf); all incremental across
# invocations.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$*"; }

# Prefer Ninja, but never fight an already-configured tree's generator.
gen_for() {
  if [[ ! -f "$1/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
    echo "-G Ninja"
  fi
}

step "tier-1: configure"
# shellcheck disable=SC2046
cmake -B build -S . $(gen_for build)

step "tier-1: build"
cmake --build build -j

step "tier-1: ctest (-L tier1)"
ctest --test-dir build -L tier1 --output-on-failure

step "faults: ctest (-L faults)"
ctest --test-dir build -L faults --output-on-failure

step "perf: ctest (-L perf)"
ctest --test-dir build -L perf --output-on-failure

if [[ "$FAST" == 1 ]]; then
  echo
  echo "check.sh: tier-1 OK (ASan and perf passes skipped with --fast)"
  exit 0
fi

step "asan: configure (BNM_SANITIZE=address)"
# shellcheck disable=SC2046
cmake -B build-asan -S . $(gen_for build-asan) -DBNM_SANITIZE=address

step "asan: build tests"
cmake --build build-asan -j --target bnm_tests bnm_fault_tests bnm_perf_tests

step "asan: ctest"
ctest --test-dir build-asan --output-on-failure

step "perf: configure (Release)"
# shellcheck disable=SC2046
cmake -B build-release -S . $(gen_for build-release) -DCMAKE_BUILD_TYPE=Release

step "perf: build bench"
cmake --build build-release -j --target perf_matrix

step "perf: bench/perf_matrix --runs=4 (arena A/B gate)"
# perf_matrix itself exits non-zero when the arena-off reference pass is not
# bit-identical to the arena-on pass; double-check the emitted JSON anyway.
# (The bench writes BENCH_perf_matrix.json into its working directory.)
(cd build-release && ./bench/perf_matrix --runs=4)
if ! grep -q '"identical_on_off": true' build-release/BENCH_perf_matrix.json; then
  echo "check.sh: FAIL — arena on/off results are not identical" >&2
  exit 1
fi
if ! grep -q '"identical": true' build-release/BENCH_perf_matrix.json; then
  echo "check.sh: FAIL — serial/parallel results are not identical" >&2
  exit 1
fi

echo
echo "check.sh: tier-1 + ASan + perf OK"
