#!/usr/bin/env bash
# Tier-1 verification plus an AddressSanitizer pass, a perf gate, the
# observability gates (obs tests, obs_overhead A/B, bench-JSON schemas),
# the Release kernel gate (calendar-vs-heap bit-identity across the full
# matrix + a scheduler events/sec floor), the campaign gates (100k-client
# Release throughput floor, O(shards) aggregation memory, shard-count and
# kill/resume report byte-identity) and the passive gates (TSval-matcher
# packets/sec floor + offline-pcap report byte-identity vs the live tap).
#
#   scripts/check.sh          # full: plain build + ctest, ASan build + ctest,
#                             # then Release perf_matrix (arena A/B gate) and
#                             # obs_overhead (overhead/determinism gates) runs
#                             # plus schema validation of every BENCH_*.json
#   scripts/check.sh --fast   # plain build + ctest only (skip ASan/perf/obs)
#
# Exits non-zero on the first failing step. Build trees: build/ (plain),
# build-asan/ (ASan) and build-release/ (perf); all incremental across
# invocations.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$*"; }

# Prefer Ninja, but never fight an already-configured tree's generator.
gen_for() {
  if [[ ! -f "$1/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
    echo "-G Ninja"
  fi
}

step "tier-1: configure"
# shellcheck disable=SC2046
cmake -B build -S . $(gen_for build)

step "tier-1: build"
cmake --build build -j

step "tier-1: ctest (-L tier1)"
ctest --test-dir build -L tier1 --output-on-failure

step "faults: ctest (-L faults)"
ctest --test-dir build -L faults --output-on-failure

step "perf: ctest (-L perf)"
ctest --test-dir build -L perf --output-on-failure

step "obs: ctest (-L obs)"
ctest --test-dir build -L obs --output-on-failure

step "kernel: ctest (-L kernel)"
ctest --test-dir build -L kernel --output-on-failure

step "resilience: ctest (-L resilience)"
ctest --test-dir build -L resilience --output-on-failure

step "campaign: ctest (-L campaign)"
ctest --test-dir build -L campaign --output-on-failure

step "passive: ctest (-L passive)"
ctest --test-dir build -L passive --output-on-failure

if [[ "$FAST" == 1 ]]; then
  echo
  echo "check.sh: tier-1 OK (ASan and perf passes skipped with --fast)"
  exit 0
fi

step "asan: configure (BNM_SANITIZE=address)"
# shellcheck disable=SC2046
cmake -B build-asan -S . $(gen_for build-asan) -DBNM_SANITIZE=address

step "asan: build tests"
cmake --build build-asan -j --target bnm_tests bnm_fault_tests bnm_perf_tests bnm_obs_tests bnm_kernel_tests bnm_resilience_tests bnm_campaign_tests bnm_passive_tests

step "asan: ctest"
ctest --test-dir build-asan --output-on-failure

step "perf: configure (Release)"
# shellcheck disable=SC2046
cmake -B build-release -S . $(gen_for build-release) -DCMAKE_BUILD_TYPE=Release

step "perf: build bench"
cmake --build build-release -j --target perf_matrix obs_overhead bench_schema_check chaos_matrix campaign_scale campaign passive_scale passive_pcap

step "perf: bench/perf_matrix --runs=4 (arena A/B gate)"
# perf_matrix itself exits non-zero when the arena-off reference pass is not
# bit-identical to the arena-on pass; double-check the emitted JSON anyway.
# (The bench writes BENCH_perf_matrix.json into its working directory.)
(cd build-release && ./bench/perf_matrix --runs=4)
if ! grep -q '"identical_on_off": true' build-release/BENCH_perf_matrix.json; then
  echo "check.sh: FAIL — arena on/off results are not identical" >&2
  exit 1
fi
if ! grep -q '"identical": true' build-release/BENCH_perf_matrix.json; then
  echo "check.sh: FAIL — serial/parallel results are not identical" >&2
  exit 1
fi

step "resilience: checkpoint disabled-overhead gate (<1% or sub-ms noise)"
# The crash-safe engine with every feature off must not tax healthy runs:
# under 1% over legacy run_matrix, with a sub-millisecond absolute slack
# because the full-matrix baseline is only ~30-60 ms and percentages of it
# sit inside single-core VM jitter. perf_matrix already hard-fails when the
# checked engine's results are not bit-identical to run_matrix's.
CK_PCT=$(sed -n 's/.*"disabled_overhead_percent": *\(-\{0,1\}[0-9][0-9.]*\).*/\1/p' \
  build-release/BENCH_perf_matrix.json | head -n1)
CK_DELTA=$(sed -n 's/.*"disabled_delta_ms": *\(-\{0,1\}[0-9][0-9.]*\).*/\1/p' \
  build-release/BENCH_perf_matrix.json | head -n1)
if [[ -z "$CK_PCT" || -z "$CK_DELTA" ]]; then
  echo "check.sh: FAIL — checkpoint overhead fields missing from BENCH_perf_matrix.json" >&2
  exit 1
fi
if ! awk -v pct="$CK_PCT" -v delta="$CK_DELTA" \
    'BEGIN { exit (pct + 0 < 1.0 || delta + 0 < 1.0) ? 0 : 1 }'; then
  echo "check.sh: FAIL — disabled crash-safe engine costs ${CK_PCT}% (${CK_DELTA} ms) over run_matrix" >&2
  exit 1
fi
echo "checkpoint overhead gate OK: disabled engine ${CK_PCT}% (${CK_DELTA} ms) vs run_matrix"

step "kernel: Release gate (calendar/heap identity + throughput floor)"
# The calendar queue must reproduce the binary-heap reference bit-for-bit
# across the full 88-cell matrix, and the cancellable schedule_after path
# must hold a Release-mode throughput floor (the PR-5 heap measured
# ~4.2M events/s; the calendar queue should stay comfortably above 3x that
# on any host this runs on).
if ! grep -q '"identical_calendar_heap": true' build-release/BENCH_perf_matrix.json; then
  echo "check.sh: FAIL — calendar-queue results differ from the heap reference" >&2
  exit 1
fi
EV_FLOOR=12000000
EV_PER_SEC=$(sed -n 's/.*"events_per_sec": *\([0-9][0-9.]*\).*/\1/p' \
  build-release/BENCH_perf_matrix.json | head -n1)
if [[ -z "$EV_PER_SEC" ]]; then
  echo "check.sh: FAIL — events_per_sec missing from BENCH_perf_matrix.json" >&2
  exit 1
fi
if ! awk -v v="$EV_PER_SEC" -v floor="$EV_FLOOR" \
    'BEGIN { exit (v + 0 >= floor) ? 0 : 1 }'; then
  echo "check.sh: FAIL — scheduler throughput ${EV_PER_SEC} ev/s below floor ${EV_FLOOR}" >&2
  exit 1
fi
echo "kernel gate OK: ${EV_PER_SEC} events/s (floor ${EV_FLOOR}), calendar == heap"

step "obs: bench/obs_overhead --runs=8 (overhead + determinism gates)"
# obs_overhead exits non-zero itself when the disabled-path overhead
# estimate reaches 1%, when the profiled pass is not bit-identical to the
# unprofiled one, or when serial and parallel registry snapshots differ.
(cd build-release && ./bench/obs_overhead --runs=8)
if ! grep -q '"identical": true' build-release/BENCH_obs_overhead.json; then
  echo "check.sh: FAIL — profiled run is not bit-identical" >&2
  exit 1
fi
if ! grep -q '"snapshot_identical": true' build-release/BENCH_obs_overhead.json; then
  echo "check.sh: FAIL — serial/parallel metrics snapshots differ" >&2
  exit 1
fi

step "campaign: bench/campaign_scale --clients=100000 (scale + memory gates)"
# The campaign engine must push a 100k-client population through the full
# simulator at a Release throughput floor, aggregate in O(shards) memory
# (doubling the population must not grow the aggregation state by a byte),
# and produce a byte-identical report whether it runs as 1 shard serially
# or as 8 shards. campaign_scale exits non-zero itself on an identity or
# shape failure; the greps double-check the emitted JSON.
(cd build-release && ./bench/campaign_scale --clients=100000 --runs=1)
if ! grep -q '"identical_shards": true' build-release/BENCH_campaign_scale.json; then
  echo "check.sh: FAIL — campaign reports differ across shard counts" >&2
  exit 1
fi
if ! grep -q '"independent_of_clients": true' build-release/BENCH_campaign_scale.json; then
  echo "check.sh: FAIL — campaign aggregation memory grows with client count" >&2
  exit 1
fi
# Floor far below the ~21k clients/s this box measures in Release, but far
# above anything a per-client-accumulation regression would leave standing.
CPS_FLOOR=5000
CPS=$(sed -n 's/.*"clients_per_sec": *\([0-9][0-9.]*\).*/\1/p' \
  build-release/BENCH_campaign_scale.json | head -n1)
if [[ -z "$CPS" ]]; then
  echo "check.sh: FAIL — clients_per_sec missing from BENCH_campaign_scale.json" >&2
  exit 1
fi
if ! awk -v v="$CPS" -v floor="$CPS_FLOOR" \
    'BEGIN { exit (v + 0 >= floor) ? 0 : 1 }'; then
  echo "check.sh: FAIL — campaign throughput ${CPS} clients/s below floor ${CPS_FLOOR}" >&2
  exit 1
fi
echo "campaign scale gate OK: ${CPS} clients/s (floor ${CPS_FLOOR}), O(shards) memory"

step "passive: bench/passive_scale (matcher throughput floor)"
# The TSval matcher must sustain a Release throughput floor on a synthetic
# trunk capture (64 flows x 8k packets). passive_scale exits non-zero
# itself when two replays of the stream serialize different reports.
(cd build-release && ./bench/passive_scale)
if ! grep -q '"identical_reports": true' build-release/BENCH_passive_scale.json; then
  echo "check.sh: FAIL — passive reports differ across replays" >&2
  exit 1
fi
# Floor far below the millions of packets/s a hash-map matcher manages in
# Release, but far above anything a per-packet-allocation regression or an
# accidental O(flows) scan would leave standing.
PPS_FLOOR=200000
PPS=$(sed -n 's/.*"packets_per_sec": *\([0-9][0-9.]*\).*/\1/p' \
  build-release/BENCH_passive_scale.json | head -n1)
if [[ -z "$PPS" ]]; then
  echo "check.sh: FAIL — packets_per_sec missing from BENCH_passive_scale.json" >&2
  exit 1
fi
if ! awk -v v="$PPS" -v floor="$PPS_FLOOR" \
    'BEGIN { exit (v + 0 >= floor) ? 0 : 1 }'; then
  echo "check.sh: FAIL — passive matcher ${PPS} packets/s below floor ${PPS_FLOOR}" >&2
  exit 1
fi
echo "passive scale gate OK: ${PPS} packets/s (floor ${PPS_FLOOR})"

step "passive: pcap round-trip gate (offline report == live tap report)"
# A faulted run's client tap written to a classic pcap file, re-read
# offline and fed to a fresh estimator must reproduce the live tap's
# report byte for byte. passive_pcap exits non-zero itself on a mismatch
# (or when the faults failed to exercise the Karn-suppression path); the
# cmp double-checks the emitted files.
PASSIVE_DIR=build-release/passive_roundtrip
rm -rf "$PASSIVE_DIR"
mkdir -p "$PASSIVE_DIR"
./build-release/tools/passive_pcap \
  --pcap="$PASSIVE_DIR/capture.pcap" \
  --live-report="$PASSIVE_DIR/REPORT_passive_live.json" \
  --offline-report="$PASSIVE_DIR/REPORT_passive_offline.json"
if ! cmp -s "$PASSIVE_DIR/REPORT_passive_live.json" \
    "$PASSIVE_DIR/REPORT_passive_offline.json"; then
  echo "check.sh: FAIL — offline pcap report differs from the live tap" >&2
  exit 1
fi
echo "passive pcap gate OK: offline report byte-identical to the live tap"
./build-release/tools/bench_schema_check \
  "$PASSIVE_DIR"/REPORT_passive_*.json

step "obs: validate BENCH_*.json against docs/BENCH_SCHEMAS.md"
# Every bench JSON present in the release tree must match its documented
# schema exactly (unknown or missing fields fail).
BENCH_JSON=$(find build-release -maxdepth 2 -name 'BENCH_*.json' | sort)
if [[ -z "$BENCH_JSON" ]]; then
  echo "check.sh: FAIL — no BENCH_*.json produced" >&2
  exit 1
fi
# shellcheck disable=SC2086
./build-release/tools/bench_schema_check $BENCH_JSON

step "resilience: chaos gate (kill after K cells -> resume -> byte-identity)"
# A run hard-killed mid-matrix (std::_Exit inside the progress callback,
# i.e. after the checkpoint flush but before any cleanup) and resumed from
# its checkpoint must produce a final report byte-identical to a clean
# uninterrupted run's — with and without active fault plans.
CHAOS=./build-release/tools/chaos_matrix
CHAOS_DIR=build-release/chaos
rm -rf "$CHAOS_DIR"
mkdir -p "$CHAOS_DIR"
chaos_cycle() {  # $1: extra flags ("" or --faults), $2: scenario tag
  local flags=$1 tag=$2 rc=0
  # shellcheck disable=SC2086
  "$CHAOS" $flags --checkpoint="$CHAOS_DIR/CHECKPOINT_${tag}_clean.json" \
    --report="$CHAOS_DIR/REPORT_matrix_${tag}_clean.json" >/dev/null
  # shellcheck disable=SC2086
  "$CHAOS" $flags --checkpoint="$CHAOS_DIR/CHECKPOINT_${tag}.json" \
    --kill-after=3 >/dev/null || rc=$?
  if [[ "$rc" != 42 ]]; then
    echo "check.sh: FAIL — chaos kill ($tag) exited $rc, expected 42" >&2
    exit 1
  fi
  # shellcheck disable=SC2086
  "$CHAOS" $flags --checkpoint="$CHAOS_DIR/CHECKPOINT_${tag}.json" --resume \
    --report="$CHAOS_DIR/REPORT_matrix_${tag}_resumed.json" >/dev/null
  if ! cmp -s "$CHAOS_DIR/REPORT_matrix_${tag}_clean.json" \
      "$CHAOS_DIR/REPORT_matrix_${tag}_resumed.json"; then
    echo "check.sh: FAIL — resumed report ($tag) differs from the clean run" >&2
    exit 1
  fi
  echo "chaos gate OK ($tag): killed after 3 cells, resumed byte-identical"
}
chaos_cycle ""       healthy
chaos_cycle --faults faulty
./build-release/tools/bench_schema_check \
  "$CHAOS_DIR"/CHECKPOINT_*.json "$CHAOS_DIR"/REPORT_matrix_*.json

step "campaign: chaos gate (kill after K shards -> resume -> byte-identity)"
# Same discipline for the campaign engine: a run hard-killed mid-campaign
# (std::_Exit inside the progress callback, after the shard's checkpoint
# flush) and resumed must write a report byte-identical to a clean run's.
CAMPAIGN=./build-release/tools/campaign
CAMP_DIR=build-release/campaign_chaos
rm -rf "$CAMP_DIR"
mkdir -p "$CAMP_DIR"
CAMP_FLAGS=(--clients=2000 --shards=8 --runs=1 --jobs=1 --quiet)
"$CAMPAIGN" "${CAMP_FLAGS[@]}" \
  --report="$CAMP_DIR/REPORT_campaign_clean.json" 2>/dev/null
camp_rc=0
"$CAMPAIGN" "${CAMP_FLAGS[@]}" \
  --checkpoint="$CAMP_DIR/CHECKPOINT_campaign.json" \
  --kill-after=3 2>/dev/null || camp_rc=$?
if [[ "$camp_rc" != 42 ]]; then
  echo "check.sh: FAIL — campaign kill exited $camp_rc, expected 42" >&2
  exit 1
fi
"$CAMPAIGN" "${CAMP_FLAGS[@]}" \
  --checkpoint="$CAMP_DIR/CHECKPOINT_campaign.json" --resume \
  --report="$CAMP_DIR/REPORT_campaign_resumed.json" 2>/dev/null
if ! cmp -s "$CAMP_DIR/REPORT_campaign_clean.json" \
    "$CAMP_DIR/REPORT_campaign_resumed.json"; then
  echo "check.sh: FAIL — resumed campaign report differs from the clean run" >&2
  exit 1
fi
echo "campaign chaos gate OK: killed after 3 shards, resumed byte-identical"
./build-release/tools/bench_schema_check \
  "$CAMP_DIR"/CHECKPOINT_campaign.json "$CAMP_DIR"/REPORT_campaign_*.json

echo
echo "check.sh: tier-1 + ASan + perf + obs + resilience + campaign + passive OK"
